package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"videodb/internal/benchfmt"
)

// node is one backend process — a shard primary or one of its read
// replicas — with its observed health. Health changes come from two
// directions: the background prober (every ProbeInterval) and the data
// path itself (a failed fan-out marks the node down immediately, a
// successful one marks it up), so the coordinator reacts to a dead
// shard at request speed, not probe speed.
type node struct {
	url     string
	replica bool

	mu        sync.Mutex
	up        bool
	fails     int
	lastErr   string
	lastProbe time.Time
	health    map[string]any // last /api/health document
}

func (n *node) markUp(doc map[string]any) {
	n.mu.Lock()
	n.up = true
	n.fails = 0
	n.lastErr = ""
	n.lastProbe = time.Now()
	if doc != nil {
		n.health = doc
	}
	n.mu.Unlock()
}

func (n *node) markDown(err error) {
	n.mu.Lock()
	n.up = false
	n.fails++
	n.lastErr = err.Error()
	n.lastProbe = time.Now()
	n.mu.Unlock()
}

func (n *node) isUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// snapshot returns the node's liveness fields under one lock hold.
func (n *node) snapshot() (up bool, fails int, lastErr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up, n.fails, n.lastErr
}

// healthValue reads one numeric field of the node's last health doc.
func (n *node) healthValue(key string) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.health[key].(float64)
	return v, ok
}

// healthString reads one string field of the node's last health doc.
func (n *node) healthString(key string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.health[key].(string)
	return v, ok
}

// shard is one partition of the corpus: a primary plus any read
// replicas, with a fan-out latency histogram for the status endpoint
// and read-balance counters for bounded-staleness replica reads.
type shard struct {
	id    int
	nodes []*node // nodes[0] is the primary

	histMu sync.Mutex
	hist   *benchfmt.Histogram

	// rr rotates the first read slot across the primary and the
	// staleness-eligible replicas; primaryReads / replicaReads record
	// which role actually got that slot (monotone counters surfaced in
	// /api/cluster/status as the read balance).
	rr           atomic.Uint64
	primaryReads atomic.Int64
	replicaReads atomic.Int64
}

// newShard builds one shard's node set from its config: the primary at
// slot 0, replicas behind it, all optimistically up until probed.
func newShard(id int, sc ShardConfig) *shard {
	sh := &shard{id: id, hist: benchfmt.NewHistogram()}
	sh.nodes = append(sh.nodes, &node{url: sc.Primary, up: true})
	for _, r := range sc.Replicas {
		sh.nodes = append(sh.nodes, &node{url: r, replica: true, up: true})
	}
	return sh
}

func (sh *shard) primary() *node { return sh.nodes[0] }

// replicaLag returns replica n's byte lag behind the shard's primary,
// computed from the most recent health observations: the primary's
// journal size minus the replica's applied cut. ok is false when the
// lag is unknowable — either node's health doc is missing the fields,
// or the two report different journal generations (the primary rotated
// or restarted and the replica has not re-bootstrapped yet, when
// comparing offsets is meaningless). A negative difference clamps to
// zero: the two docs are sampled at different instants, so a replica
// can appear momentarily ahead.
func (sh *shard) replicaLag(n *node) (int64, bool) {
	primarySize, sizeOK := sh.primary().healthValue("walSize")
	primaryGen, genOK := sh.primary().healthString("walGen")
	cut, cutOK := n.healthValue("replicationCut")
	gen, rgenOK := n.healthString("replicationGen")
	if !sizeOK || !genOK || !cutOK || !rgenOK || gen != primaryGen {
		return -1, false
	}
	lag := int64(primarySize - cut)
	if lag < 0 {
		lag = 0
	}
	return lag, true
}

// eligibleForRead reports whether replica n may serve a rotated
// bounded-staleness read: the node is up and its lag is known and at
// most bound (the boundary is inclusive — a replica exactly at the
// bound still qualifies). A generation mismatch makes the lag unknown,
// so a replica mid-resync always falls back to the primary.
func (sh *shard) eligibleForRead(n *node, bound int64) bool {
	if !n.replica || !n.isUp() {
		return false
	}
	lag, ok := sh.replicaLag(n)
	return ok && lag <= bound
}

// readOrder returns the nodes to try for a read: the primary first,
// then replicas — except a down primary sorts last, which is the
// read-side promotion: while the primary is out, replicas answer.
func (sh *shard) readOrder() []*node {
	out := make([]*node, 0, len(sh.nodes))
	var down []*node
	for _, n := range sh.nodes {
		if n.isUp() {
			out = append(out, n)
		} else {
			down = append(down, n)
		}
	}
	// Down nodes stay in the order as a last resort: health state can
	// be stale, and trying a "down" node is cheaper than refusing.
	return append(out, down...)
}

// readOrder is the coordinator's node preference for one shard read:
// the shard's failover order, with bounded-staleness rotation applied
// when replica reads are enabled. While the primary is healthy, the
// first slot rotates round-robin across the primary and every replica
// whose lag is within the staleness bound — spreading read load instead
// of pinning it to the primary — and the rest of the failover order
// stays behind the rotated choice, so hedging and failover work
// unchanged. With the primary down, the plain failover order applies
// (read-side promotion already prefers replicas). Either way the
// shard's read-balance counters record which role got the first slot.
func (c *Coordinator) readOrder(sh *shard) []*node {
	order := sh.readOrder()
	if c.replicaReads && len(order) > 1 && sh.primary().isUp() {
		var eligible []*node
		for _, n := range sh.nodes {
			if sh.eligibleForRead(n, c.stalenessBound) {
				eligible = append(eligible, n)
			}
		}
		if len(eligible) > 0 {
			pick := int(sh.rr.Add(1) % uint64(len(eligible)+1))
			if pick > 0 {
				chosen := eligible[pick-1]
				rotated := make([]*node, 0, len(order))
				rotated = append(rotated, chosen)
				for _, n := range order {
					if n != chosen {
						rotated = append(rotated, n)
					}
				}
				order = rotated
			}
		}
	}
	if len(order) > 0 {
		if order[0].replica {
			sh.replicaReads.Add(1)
		} else {
			sh.primaryReads.Add(1)
		}
	}
	return order
}

func (sh *shard) observeFanout(d time.Duration) {
	sh.histMu.Lock()
	sh.hist.RecordDuration(d)
	sh.histMu.Unlock()
}

func (sh *shard) fanoutQuantile(q float64) (seconds float64, count int64) {
	sh.histMu.Lock()
	defer sh.histMu.Unlock()
	return sh.hist.Quantile(q), sh.hist.Count()
}

// hedgeMinSamples is how many fan-out observations a shard needs before
// its p99 is trusted to derive the hedge delay; below it the configured
// floor applies.
const hedgeMinSamples = 20

// hedgeDelay is how long to wait on the primary before firing a backup
// probe at a replica: the shard's observed p99 fan-out latency (so only
// the slowest ~1% of requests hedge, keeping the extra load marginal),
// clamped between the configured floor and half the fan-out timeout (a
// hedge fired later than that cannot finish in time anyway).
func (sh *shard) hedgeDelay(floor, timeout time.Duration) time.Duration {
	d := floor
	if p99, count := sh.fanoutQuantile(0.99); count >= hedgeMinSamples {
		if pd := time.Duration(p99 * float64(time.Second)); pd > d {
			d = pd
		}
	}
	if timeout > 0 && d > timeout/2 {
		d = timeout / 2
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// probe polls one node's /api/health.
func (c *Coordinator) probe(ctx context.Context, n *node) {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/api/health", nil)
	if err != nil {
		n.markDown(err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		n.markDown(err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		n.markDown(fmt.Errorf("health probe: status %d: %v", resp.StatusCode, err))
		return
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		n.markDown(fmt.Errorf("health probe: %w", err))
		return
	}
	n.markUp(doc)
}

func (c *Coordinator) probeTimeout() time.Duration {
	if c.timeout > 0 && c.timeout < 2*time.Second {
		return c.timeout
	}
	return 2 * time.Second
}

// probeLoop polls every node until Close.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-c.stop; cancel() }()
	tick := time.NewTicker(c.probeInterval)
	defer tick.Stop()
	for {
		c.probeAll(ctx)
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
	}
}

// probeAll probes every node of the current topology once,
// concurrently. The shard list is re-read from the topology pointer on
// every round, so shards added by a reshard start being probed on the
// next cycle without coordination.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range c.topo.Load().shards {
		for _, n := range sh.nodes {
			wg.Add(1)
			go func(n *node) {
				defer wg.Done()
				c.probe(ctx, n)
			}(n)
		}
	}
	wg.Wait()
}

// NodeStatus is one backend's health in the cluster status document.
type NodeStatus struct {
	URL       string  `json:"url"`
	Role      string  `json:"role"` // "primary" or "replica"
	Up        bool    `json:"up"`
	Fails     int     `json:"fails,omitempty"`
	LastError string  `json:"lastError,omitempty"`
	Clips     float64 `json:"clips,omitempty"`
	Epoch     float64 `json:"epoch,omitempty"`
	// LagBytes is a replica's journal byte lag behind its primary
	// (primary walSize minus the replica's applied cut), -1 when it
	// cannot be computed (node down, generations diverged mid-resync).
	LagBytes int64 `json:"lagBytes,omitempty"`
}

// ShardStatus is one shard's slice of the cluster status document.
type ShardStatus struct {
	ID    int          `json:"id"`
	Nodes []NodeStatus `json:"nodes"`
	// FanoutP99Seconds is the 99th-percentile fan-out latency the
	// coordinator has observed against this shard.
	FanoutP99Seconds float64 `json:"fanoutP99Seconds"`
	FanoutCount      int64   `json:"fanoutCount"`
	// PrimaryReads / ReplicaReads are the read-balance counters: how
	// many shard reads were routed first to the primary vs a replica
	// (bounded-staleness rotation plus read-side promotion).
	PrimaryReads int64 `json:"primaryReads"`
	ReplicaReads int64 `json:"replicaReads"`
}

// StatusJSON is the GET /api/cluster/status document.
type StatusJSON struct {
	Shards         []ShardStatus `json:"shards"`
	Queries        int64         `json:"queries"`
	Batches        int64         `json:"batches"`
	PartialQueries int64         `json:"partialQueries"`
	// MaxLagBytes is the largest replica lag across the cluster, -1 if
	// any replica's lag is unknown.
	MaxLagBytes int64 `json:"maxLagBytes"`
	// Fetches counts primary shard fetches; Retries and Hedges are the
	// extra attempts paid from the retry budget, with their suppressed
	// counterparts recording budget refusals. HedgeWins is how often
	// the backup probe answered first; Backpressure counts shard 429s
	// propagated to clients.
	Fetches           int64 `json:"fetches"`
	Retries           int64 `json:"retries"`
	RetriesSuppressed int64 `json:"retriesSuppressed"`
	Hedges            int64 `json:"hedges"`
	HedgeWins         int64 `json:"hedgeWins"`
	HedgesSuppressed  int64 `json:"hedgesSuppressed"`
	Backpressure      int64 `json:"backpressure"`
	// ReplicaReadsEnabled / StalenessBoundBytes echo the coordinator's
	// bounded-staleness read configuration.
	ReplicaReadsEnabled bool  `json:"replicaReadsEnabled"`
	StalenessBoundBytes int64 `json:"stalenessBoundBytes"`
	// Reshard describes the running or most recent reshard operation;
	// absent until one has been requested.
	Reshard *ReshardStatus `json:"reshard,omitempty"`
}

// status assembles the cluster status document from the latest health
// observations.
func (c *Coordinator) status() StatusJSON {
	shards := c.topo.Load().shards
	out := StatusJSON{Shards: make([]ShardStatus, len(shards))}
	var maxLag int64
	for i, sh := range shards {
		ss := ShardStatus{ID: sh.id}
		ss.FanoutP99Seconds, ss.FanoutCount = sh.fanoutQuantile(0.99)
		ss.PrimaryReads = sh.primaryReads.Load()
		ss.ReplicaReads = sh.replicaReads.Load()
		for _, n := range sh.nodes {
			up, fails, lastErr := n.snapshot()
			ns := NodeStatus{URL: n.url, Role: "primary", Up: up, Fails: fails, LastError: lastErr}
			if n.replica {
				ns.Role = "replica"
			}
			if v, ok := n.healthValue("clips"); ok {
				ns.Clips = v
			}
			if v, ok := n.healthValue("epoch"); ok {
				ns.Epoch = v
			}
			if n.replica {
				ns.LagBytes = -1
				if lag, ok := sh.replicaLag(n); up && ok {
					ns.LagBytes = lag
				}
				switch {
				case ns.LagBytes < 0:
					maxLag = -1
				case maxLag >= 0 && ns.LagBytes > maxLag:
					maxLag = ns.LagBytes
				}
			}
			ss.Nodes = append(ss.Nodes, ns)
		}
		out.Shards[i] = ss
	}
	out.MaxLagBytes = maxLag
	out.ReplicaReadsEnabled = c.replicaReads
	out.StalenessBoundBytes = c.stalenessBound
	out.Reshard = c.reshard.statusDoc()
	out.Queries = c.metrics.get("queries")
	out.Batches = c.metrics.get("batches")
	out.PartialQueries = c.metrics.get("partial")
	out.Fetches = c.metrics.get("fetches")
	out.Retries = c.metrics.get("retries")
	out.RetriesSuppressed = c.metrics.get("retries_suppressed")
	out.Hedges = c.metrics.get("hedges")
	out.HedgeWins = c.metrics.get("hedge_wins")
	out.HedgesSuppressed = c.metrics.get("hedges_suppressed")
	out.Backpressure = c.metrics.get("backpressure")
	return out
}
