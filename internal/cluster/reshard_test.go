package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
	"videodb/internal/store"
	"videodb/internal/video"
)

// addBackend spins up one fresh shard backend (empty journal-less
// database behind a stock vdbserver handler) for a grow.
func addBackend(t *testing.T) (*core.Database, *httptest.Server) {
	t.Helper()
	db := newDB(t)
	ts := httptest.NewServer(server.New(db).Handler())
	t.Cleanup(ts.Close)
	return db, ts
}

// postReshard drives the HTTP endpoint and decodes the report.
func postReshard(t *testing.T, front string, body string) (*ReshardReport, int) {
	t.Helper()
	resp, err := http.Post(front+"/api/cluster/reshard", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep ReshardReport
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("decoding reshard report: %v", err)
		}
	}
	return &rep, resp.StatusCode
}

// assertEquivalence checks the coordinator's merged answers are
// byte-identical to the single-node oracle over the union corpus, for
// the corpus-derived query workload.
func assertEquivalence(t *testing.T, front, oracle string, union *core.Database, when string) {
	t.Helper()
	for _, p := range queryPoints(union) {
		q := fmt.Sprintf("/api/query?varba=%g&varoa=%g", p[0], p[1])
		var want []server.MatchJSON
		if code, _ := getJSON(t, oracle+q, &want); code != http.StatusOK {
			t.Fatalf("%s: oracle status %d for %s", when, code, q)
		}
		var got QueryResponseJSON
		code, _ := getJSON(t, front+q, &got)
		if code != http.StatusOK {
			t.Fatalf("%s: coordinator status %d for %s", when, code, q)
		}
		if got.Partial {
			t.Fatalf("%s: partial answer for %s on a healthy cluster", when, q)
		}
		if len(want) == 0 && len(got.Matches) == 0 {
			continue
		}
		if !reflect.DeepEqual(got.Matches, want) {
			t.Fatalf("%s: merged answer differs from oracle for %s\n got: %+v\nwant: %+v",
				when, q, got.Matches, want)
		}
	}
}

// assertPlacement checks every clip lives exactly on its ring owner
// among the given shard databases — no clip missing, none duplicated.
func assertPlacement(t *testing.T, union *core.Database, shardDBs []*core.Database) {
	t.Helper()
	ring := NewRing(len(shardDBs), 0)
	for _, rec := range union.Records() {
		owner := ring.Owner(rec.Name)
		for i, db := range shardDBs {
			_, ok := db.Clip(rec.Name)
			if i == owner && !ok {
				t.Errorf("clip %q missing from its owner shard %d", rec.Name, owner)
			}
			if i != owner && ok {
				t.Errorf("clip %q duplicated on shard %d (owner is %d)", rec.Name, i, owner)
			}
		}
	}
}

// TestReshardGrowEquivalence is the migration differential on a stable
// corpus: while a 3-shard cluster grows to 4 online, concurrent
// queriers must see bit-identical answers to a never-resharded single
// node at every instant — before, during the copy, through the
// cutover, across the dual-read window, and after cleanup. Afterward
// every clip lives exactly on its new-ring owner.
func TestReshardGrowEquivalence(t *testing.T) {
	clips := makeClips(t, 8)
	tc := newTestCluster(t, 3, clips)
	oracle := httptest.NewServer(server.New(tc.union).Handler())
	t.Cleanup(oracle.Close)

	assertEquivalence(t, tc.front.URL, oracle.URL, tc.union, "before reshard")

	// Continuous differential load across the whole migration. The
	// corpus is stable, so any deviation — a partial answer, a missing
	// or duplicated match, a non-200 — is a migration bug.
	pts := queryPoints(tc.union)
	oracleAnswers := make([][]server.MatchJSON, len(pts))
	for i, p := range pts {
		q := fmt.Sprintf("/api/query?varba=%g&varoa=%g", p[0], p[1])
		if code, _ := getJSON(t, oracle.URL+q, &oracleAnswers[i]); code != http.StatusOK {
			t.Fatalf("oracle status %d", code)
		}
	}
	stopLoad := make(chan struct{})
	loadErr := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				k := (i*7 + w) % len(pts)
				q := fmt.Sprintf("/api/query?varba=%g&varoa=%g", pts[k][0], pts[k][1])
				resp, err := http.Get(tc.front.URL + q)
				if err != nil {
					loadErr <- fmt.Errorf("querier %d: %w", w, err)
					return
				}
				var got QueryResponseJSON
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					loadErr <- fmt.Errorf("querier %d: decode: %w", w, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					loadErr <- fmt.Errorf("querier %d: status %d mid-reshard", w, resp.StatusCode)
					return
				}
				if got.Partial {
					loadErr <- fmt.Errorf("querier %d: partial answer mid-reshard", w)
					return
				}
				want := oracleAnswers[k]
				if len(want) == 0 && len(got.Matches) == 0 {
					continue
				}
				if !reflect.DeepEqual(got.Matches, want) {
					loadErr <- fmt.Errorf("querier %d: answer diverged from oracle mid-reshard for %s", w, q)
					return
				}
			}
		}(w)
	}

	newDB4, newTS := addBackend(t)
	rep, code := postReshard(t, tc.front.URL, fmt.Sprintf(`{"add":[{"primary":%q}]}`, newTS.URL))
	close(stopLoad)
	wg.Wait()
	select {
	case err := <-loadErr:
		t.Fatal(err)
	default:
	}
	if code != http.StatusOK {
		t.Fatalf("reshard: status %d", code)
	}
	if rep.FromShards != 3 || rep.ToShards != 4 {
		t.Fatalf("report shards %d->%d, want 3->4", rep.FromShards, rep.ToShards)
	}
	if rep.RolledBack || rep.Error != "" {
		t.Fatalf("reshard rolled back: %+v", rep)
	}
	if rep.MovedClips == 0 {
		t.Fatal("grow moved no clips (8 clips, ~1/4 of keyspace should move)")
	}
	if rep.VerifiedClips < rep.MovedClips {
		t.Errorf("verified %d of %d moved clips; every copy must be verified", rep.VerifiedClips, rep.MovedClips)
	}
	if rep.DeletedFromSource != rep.MovedClips {
		t.Errorf("cleanup deleted %d source copies, want %d (dual-read window must close)",
			rep.DeletedFromSource, rep.MovedClips)
	}
	if f := rep.MovedFraction; f <= 0 || f > 0.6 {
		t.Errorf("moved fraction %.3f, want about 0.25 for 3->4", f)
	}

	assertEquivalence(t, tc.front.URL, oracle.URL, tc.union, "after reshard")
	assertPlacement(t, tc.union, append(append([]*core.Database{}, tc.shardDBs...), newDB4))

	var st StatusJSON
	if code, _ := getJSON(t, tc.front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("status lists %d shards after grow, want 4", len(st.Shards))
	}
	if st.Reshard == nil || st.Reshard.Active || st.Reshard.Phase != "done" {
		t.Fatalf("status reshard doc = %+v, want inactive done", st.Reshard)
	}
	if st.Reshard.Report == nil || st.Reshard.Report.MovedClips != rep.MovedClips {
		t.Errorf("status-attached report differs from endpoint report")
	}
}

// TestReshardShrink drops the tail shard of a 4-shard cluster: its
// clips migrate to the survivors, answers stay equivalent to the
// oracle, and every clip lands exactly on its new-ring owner.
func TestReshardShrink(t *testing.T) {
	clips := makeClips(t, 8)
	tc := newTestCluster(t, 4, clips)
	oracle := httptest.NewServer(server.New(tc.union).Handler())
	t.Cleanup(oracle.Close)

	old := NewRing(4, 0)
	leaving := 0
	for _, c := range clips {
		if old.Owner(c.Name) == 3 {
			leaving++
		}
	}

	rep, err := tc.coord.Reshard(context.Background(), ReshardRequest{Remove: 1})
	if err != nil {
		t.Fatalf("shrink: %v (report %+v)", err, rep)
	}
	if rep.FromShards != 4 || rep.ToShards != 3 {
		t.Fatalf("report shards %d->%d, want 4->3", rep.FromShards, rep.ToShards)
	}
	if rep.MovedClips != leaving {
		t.Errorf("shrink moved %d clips, want the departing shard's %d", rep.MovedClips, leaving)
	}
	if rep.DeletedFromSource != 0 {
		t.Errorf("shrink deleted %d clips from the leaving shard; removed shards are left intact", rep.DeletedFromSource)
	}

	assertEquivalence(t, tc.front.URL, oracle.URL, tc.union, "after shrink")
	assertPlacement(t, tc.union, tc.shardDBs[:3])

	// The departing shard keeps its copies (it is no longer queried);
	// an operator can wipe or repurpose it at leisure.
	if got := len(tc.shardDBs[3].Clips()); got != leaving {
		t.Errorf("leaving shard has %d clips, want its original %d", got, leaving)
	}
}

// TestReshardUnderConcurrentWrites migrates while ingests and deletes
// flow through the coordinator: every write must succeed (stalling
// briefly at the cutover barrier, never failing), and after quiesce
// the cluster must answer bit-identically to a single node holding the
// expected final corpus.
func TestReshardUnderConcurrentWrites(t *testing.T) {
	initial := makeClips(t, 6)
	tc := newTestCluster(t, 3, initial)
	extras := make([]*video.Clip, 0, 8)
	for _, c := range makeClips(t, 14)[6:] {
		extras = append(extras, c)
	}
	victims := []string{initial[1].Name, initial[4].Name}

	writeErr := make(chan error, len(extras)+len(victims))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, clip := range extras {
			var buf bytes.Buffer
			if err := store.WriteClip(&buf, clip); err != nil {
				writeErr <- err
				return
			}
			resp, err := http.Post(tc.front.URL+"/api/clips?name="+clip.Name,
				"application/octet-stream", bytes.NewReader(buf.Bytes()))
			if err != nil {
				writeErr <- fmt.Errorf("ingest %s: %w", clip.Name, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				writeErr <- fmt.Errorf("ingest %s: status %d", clip.Name, resp.StatusCode)
				return
			}
			if i < len(victims) {
				req, _ := http.NewRequest(http.MethodDelete, tc.front.URL+"/api/clips/"+victims[i], nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					writeErr <- fmt.Errorf("delete %s: %w", victims[i], err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					writeErr <- fmt.Errorf("delete %s: status %d", victims[i], resp.StatusCode)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	newShardDB, newTS := addBackend(t)
	rep, code := postReshard(t, tc.front.URL, fmt.Sprintf(`{"add":[{"primary":%q}]}`, newTS.URL))
	wg.Wait()
	close(writeErr)
	for err := range writeErr {
		t.Fatal(err)
	}
	if code != http.StatusOK || rep.Error != "" {
		t.Fatalf("reshard under writes: status %d report %+v", code, rep)
	}

	// Build the expected final corpus: initial minus victims plus extras.
	oracleDB := newDB(t)
	gone := map[string]bool{victims[0]: true, victims[1]: true}
	for _, c := range initial {
		if !gone[c.Name] {
			if _, err := oracleDB.Ingest(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range extras {
		if _, err := oracleDB.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	oracle := httptest.NewServer(server.New(oracleDB).Handler())
	t.Cleanup(oracle.Close)

	// The reshard has returned and all writes are acknowledged, but a
	// write that raced the cleanup phase may leave a source copy for a
	// moment; all such copies are deleted before Reshard returns, so
	// the state is already quiescent.
	var listing []server.ClipSummary
	if code, _ := getJSON(t, tc.front.URL+"/api/clips", &listing); code != http.StatusOK {
		t.Fatalf("final listing: %d", code)
	}
	if want := len(initial) - len(victims) + len(extras); len(listing) != want {
		names := make([]string, len(listing))
		for i, c := range listing {
			names[i] = c.Name
		}
		t.Fatalf("final corpus has %d clips, want %d: %v", len(listing), want, names)
	}
	assertEquivalence(t, tc.front.URL, oracle.URL, oracleDB, "after reshard under writes")
	assertPlacement(t, oracleDB, append(append([]*core.Database{}, tc.shardDBs...), newShardDB))
}

// TestReshardValidation pins the request contract: malformed bodies
// and impossible memberships are rejected up front, and only one
// reshard runs at a time.
func TestReshardValidation(t *testing.T) {
	tc := newTestCluster(t, 2, makeClips(t, 2))
	for _, bad := range []string{
		`{}`,
		`{"add":[{"primary":"http://x"}],"remove":1}`,
		`{"remove":2}`,
		`{"remove":5}`,
		`{"add":[{"primary":""}]}`,
		`not json`,
	} {
		if _, code := postReshard(t, tc.front.URL, bad); code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", bad, code)
		}
	}

	// Single-flight: while one reshard runs, a second answers 409.
	if err := tc.coord.reshard.begin(2, 3); err != nil {
		t.Fatal(err)
	}
	_, code := postReshard(t, tc.front.URL, `{"remove":1}`)
	tc.coord.reshard.finish(&ReshardReport{})
	if code != http.StatusConflict {
		t.Errorf("concurrent reshard: status %d, want 409", code)
	}
	if _, err := tc.coord.Reshard(context.Background(), ReshardRequest{Remove: 1}); err != nil {
		t.Fatalf("reshard after the guard released: %v", err)
	}
}

// TestReshardRollbackOnDeadDestination points a grow at an unreachable
// new shard: the reshard must fail fast, keep the old topology, and
// leave the corpus untouched.
func TestReshardRollbackOnDeadDestination(t *testing.T) {
	clips := makeClips(t, 4)
	tc := newTestCluster(t, 2, clips)
	oracle := httptest.NewServer(server.New(tc.union).Handler())
	t.Cleanup(oracle.Close)

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rep, code := postReshard(t, tc.front.URL, fmt.Sprintf(`{"add":[{"primary":%q}]}`, dead.URL))
	if code != http.StatusInternalServerError {
		t.Fatalf("reshard to a dead shard: status %d, want 500", code)
	}
	_ = rep

	var st StatusJSON
	if code, _ := getJSON(t, tc.front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("failed reshard changed membership: %d shards, want 2", len(st.Shards))
	}
	if st.Reshard == nil || st.Reshard.Phase != "failed" {
		t.Fatalf("status reshard doc = %+v, want failed", st.Reshard)
	}
	assertEquivalence(t, tc.front.URL, oracle.URL, tc.union, "after failed reshard")
	assertPlacement(t, tc.union, tc.shardDBs)
}
