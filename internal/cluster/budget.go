package cluster

import "sync"

// retryBudget is a Finagle-style retry budget shared by every shard
// fan-out: each primary fetch deposits ratio tokens, and every retry,
// failover attempt or hedge withdraws one. The balance is capped, so an
// idle period cannot bank an unbounded burst of retries. When demand
// exceeds ratio × primary traffic — the signature of an outage, where
// every request wants a retry — the budget runs dry and the coordinator
// fails fast instead of amplifying the outage into a retry storm that
// multiplies load on the surviving nodes.
type retryBudget struct {
	mu        sync.Mutex
	ratio     float64
	tokens    float64
	unlimited bool
}

// budgetBurst caps the banked balance and seeds the initial one, so a
// cold coordinator can still fail over its first requests before any
// deposits accrue.
const budgetBurst = 16

// newRetryBudget grants ratio retries per primary fetch; a negative
// ratio disables the cap entirely (every take succeeds).
func newRetryBudget(ratio float64) *retryBudget {
	return &retryBudget{ratio: ratio, tokens: budgetBurst, unlimited: ratio < 0}
}

// deposit credits one primary fetch's worth of retry allowance.
func (b *retryBudget) deposit() {
	if b.unlimited {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > budgetBurst {
		b.tokens = budgetBurst
	}
	b.mu.Unlock()
}

// take withdraws one token, reporting false when the budget is dry and
// the extra attempt must be suppressed.
func (b *retryBudget) take() bool {
	if b.unlimited {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
