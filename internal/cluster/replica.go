package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
	"videodb/internal/wal"
)

// Replica follows a primary: it bootstraps the database from the
// primary's replication snapshot, then tails the primary's journal,
// replaying each shipped record through the same idempotent apply path
// startup recovery uses (wal.ApplyRecord). State only ever enters the
// database through that stream — the process runs the HTTP API
// read-only — so the replica is a consistent, possibly slightly stale
// copy of the primary at all times.
//
// Failure handling is re-convergent rather than precise: a 409 from
// the WAL endpoint (journal rotated, primary restarted), a torn chunk
// that yields no whole record, or any doubt about where the stream
// stands sends the replica back to a full snapshot bootstrap, which is
// always correct because ApplySnapshot replaces the state wholesale.
type Replica struct {
	db       *core.Database
	primary  string
	client   *http.Client
	interval time.Duration
	log      *slog.Logger

	stop   chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	cut         int64  // next journal offset to request
	gen         string // journal generation the cut belongs to
	primarySize int64  // primary's journal size at the last poll
	applied     int64  // records replayed
	bootstraps  int64  // full snapshot bootstraps (1 = clean start)
	lastErr     string
}

// ReplicaOption configures StartReplica.
type ReplicaOption func(*Replica)

// WithReplicaInterval sets the WAL poll period (default 250ms). The
// replica polls immediately again while it knows the primary has more
// bytes, so the interval only bounds idle-time staleness.
func WithReplicaInterval(d time.Duration) ReplicaOption {
	return func(r *Replica) { r.interval = d }
}

// WithReplicaClient overrides the HTTP client (tests).
func WithReplicaClient(cl *http.Client) ReplicaOption {
	return func(r *Replica) { r.client = cl }
}

// WithReplicaLogger directs the replication log; nil discards.
func WithReplicaLogger(l *slog.Logger) ReplicaOption {
	return func(r *Replica) { r.log = l }
}

// StartReplica begins replicating primaryURL into db and returns the
// running replica. db should be empty (anything in it is replaced by
// the first bootstrap). Stop with Close.
func StartReplica(db *core.Database, primaryURL string, opts ...ReplicaOption) *Replica {
	r := &Replica{
		db:       db,
		primary:  primaryURL,
		client:   &http.Client{},
		interval: 250 * time.Millisecond,
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		stop:     make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.wg.Add(1)
	go r.loop(ctx)
	return r
}

// Close stops the replication loop and waits for it to exit. The
// database keeps the last applied state.
func (r *Replica) Close() {
	close(r.stop)
	r.cancel()
	r.wg.Wait()
}

// ReplicaStats is a snapshot of the replication progress.
type ReplicaStats struct {
	// Cut is the next journal offset the replica will request; every
	// record before it has been applied.
	Cut int64
	// Gen is the journal generation Cut belongs to ("" before the
	// first successful bootstrap).
	Gen string
	// LagBytes is Cut's distance behind the primary's journal size as
	// of the last poll — 0 means caught up.
	LagBytes int64
	// Applied is the count of records replayed since start.
	Applied int64
	// Bootstraps counts full snapshot bootstraps; 1 is the clean
	// start, more means the stream had to re-converge.
	Bootstraps int64
	// LastError is the most recent replication error ("" when the last
	// step succeeded).
	LastError string
}

// Stats returns the current replication progress.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	lag := r.primarySize - r.cut
	if lag < 0 || r.gen == "" {
		lag = 0
	}
	return ReplicaStats{
		Cut: r.cut, Gen: r.gen, LagBytes: lag,
		Applied: r.applied, Bootstraps: r.bootstraps, LastError: r.lastErr,
	}
}

// HealthInfo extends a server's /api/health document with replication
// progress (install via server.WithHealthInfo). The coordinator's
// status endpoint reads replicationCut and replicationGen to compute
// this replica's lag against its primary.
func (r *Replica) HealthInfo(doc map[string]any) {
	st := r.Stats()
	doc["replicationPrimary"] = r.primary
	doc["replicationCut"] = st.Cut
	doc["replicationGen"] = st.Gen
	doc["replicationLagBytes"] = st.LagBytes
	doc["replicationBootstraps"] = st.Bootstraps
	if st.LastError != "" {
		doc["replicationError"] = st.LastError
	}
}

// Metrics extends a server's /api/metrics with replication counters
// and gauges (install via server.WithExtraMetrics).
func (r *Replica) Metrics(counters, gauges map[string]float64) {
	st := r.Stats()
	counters["videodb_replica_applied_records_total"] = float64(st.Applied)
	counters["videodb_replica_bootstraps_total"] = float64(st.Bootstraps)
	gauges["videodb_replica_lag_bytes"] = float64(st.LagBytes)
	gauges["videodb_replica_cut"] = float64(st.Cut)
}

// loop drives the replication: bootstrap until one succeeds, then tail
// the WAL, polling immediately while behind and every interval when
// caught up.
func (r *Replica) loop(ctx context.Context) {
	defer r.wg.Done()
	for {
		more, err := r.step(ctx)
		if err != nil {
			r.setErr(err)
			r.log.Warn("replication step failed", "err", err)
		} else {
			r.setErr(nil)
		}
		if more && err == nil {
			// Known backlog: keep draining without sleeping.
			select {
			case <-r.stop:
				return
			default:
				continue
			}
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.interval):
		}
	}
}

func (r *Replica) setErr(err error) {
	r.mu.Lock()
	if err != nil {
		r.lastErr = err.Error()
	} else {
		r.lastErr = ""
	}
	r.mu.Unlock()
}

// step advances replication by one round trip: a bootstrap when no
// generation is held, one WAL poll otherwise. It reports whether the
// primary is known to have more bytes waiting.
func (r *Replica) step(ctx context.Context) (more bool, err error) {
	r.mu.Lock()
	gen := r.gen
	cut := r.cut
	r.mu.Unlock()
	if gen == "" {
		return false, r.bootstrap(ctx)
	}
	return r.pollWAL(ctx, cut, gen)
}

// bootstrap replaces the database from the primary's replication
// snapshot and adopts the (cut, gen) pair it was captured at.
func (r *Replica) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.primary+"/api/replication/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("bootstrap: primary answered %d: %s", resp.StatusCode, body)
	}
	cut, err := strconv.ParseInt(resp.Header.Get(server.HeaderWalCut), 10, 64)
	if err != nil {
		return fmt.Errorf("bootstrap: bad %s header: %w", server.HeaderWalCut, err)
	}
	gen := resp.Header.Get(server.HeaderWalGen)
	if gen == "" {
		return fmt.Errorf("bootstrap: primary sent no %s header", server.HeaderWalGen)
	}
	if err := r.db.ApplySnapshot(resp.Body); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	r.mu.Lock()
	r.cut = cut
	r.gen = gen
	r.primarySize = cut
	r.bootstraps++
	r.mu.Unlock()
	r.log.Info("replica bootstrapped", "cut", cut, "gen", gen)
	return nil
}

// pollWAL fetches and applies one journal chunk.
func (r *Replica) pollWAL(ctx context.Context, cut int64, gen string) (more bool, err error) {
	url := fmt.Sprintf("%s/api/replication/wal?from=%d&gen=%s", r.primary, cut, gen)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("wal poll: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		// The journal rotated past our cut or the primary restarted:
		// our offset means nothing anymore. Drop the generation and
		// let the next step re-bootstrap.
		r.forgetGeneration()
		r.log.Info("journal generation changed; re-bootstrapping",
			"had", gen, "primary", resp.Header.Get(server.HeaderWalGen))
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return false, fmt.Errorf("wal poll: primary answered %d: %s", resp.StatusCode, body)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, fmt.Errorf("wal poll: reading chunk: %w", err)
	}
	size, _ := strconv.ParseInt(resp.Header.Get(server.HeaderWalSize), 10, 64)
	if len(data) == 0 {
		r.mu.Lock()
		r.primarySize = size
		r.mu.Unlock()
		return false, nil // caught up
	}
	res, err := wal.ReplayRecords(bytes.NewReader(data), func(rec wal.Record) error {
		return wal.ApplyRecord(r.db, rec)
	})
	if err != nil {
		// The frame was intact but the payload did not apply: the
		// stream is suspect as a whole. Re-converge from a snapshot.
		r.forgetGeneration()
		return true, fmt.Errorf("wal poll: applying chunk: %w", err)
	}
	if res.ValidBytes == 0 {
		// A non-empty chunk with no whole record: either the first
		// record is larger than the primary's chunk cap or the stream
		// is corrupt. Polling again would repeat the exact failure, so
		// re-converge from a snapshot (which always makes progress).
		r.forgetGeneration()
		return true, fmt.Errorf("wal poll: no whole record in %d-byte chunk (%s); re-bootstrapping",
			len(data), res.Reason)
	}
	// A Damaged tail with ValidBytes > 0 is the normal case of a record
	// straddling the chunk cap: advance past the whole records applied
	// and refetch the straddler from its start next poll.
	r.mu.Lock()
	r.cut = cut + res.ValidBytes
	r.applied += int64(res.Records)
	r.primarySize = size
	behind := r.cut < size
	r.mu.Unlock()
	return behind, nil
}

// forgetGeneration drops the stream position so the next step runs a
// full bootstrap.
func (r *Replica) forgetGeneration() {
	r.mu.Lock()
	r.gen = ""
	r.cut = 0
	r.mu.Unlock()
}
