package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"videodb/internal/admission"
	"videodb/internal/impression"
	"videodb/internal/server"
	"videodb/internal/varindex"
)

// HeaderPartial marks a scatter-gather answer assembled without every
// shard: some partition of the corpus did not contribute. The body
// carries the same flag as "partial"; the header lets load generators
// count degraded answers without parsing bodies.
const HeaderPartial = "X-Videodb-Partial"

// ShardConfig names one shard: the primary that owns the partition and
// any read replicas that can answer for it.
type ShardConfig struct {
	Primary  string
	Replicas []string
}

// Config configures a Coordinator.
type Config struct {
	// Shards is the partition list. Order is identity: shard i owns the
	// ring arcs of ordinal i, so the list must be identical (same order)
	// on every coordinator, and reordering it reshards the corpus.
	Shards []ShardConfig
	// Vnodes is the virtual-node count per shard (DefaultVnodes if 0).
	Vnodes int
	// Timeout bounds each fan-out attempt (default 10s).
	Timeout time.Duration
	// Retries is how many times a failed read attempt is retried per
	// node before failing over to the next node (default 1). Every
	// retry and failover attempt is additionally paid for from the
	// shared RetryBudget.
	Retries int
	// RetryBudget caps retry, failover and hedge volume at this
	// fraction of primary fan-out traffic (a Finagle-style retry
	// budget, so retry storms cannot amplify an outage). 0 means the
	// default 0.2; a negative value removes the cap.
	RetryBudget float64
	// Hedge enables hedged scatter reads: when a shard has a replica
	// and its primary has not answered within the hedge delay, a backup
	// probe fires at the replica and the first success wins. Hedges are
	// paid from the RetryBudget like retries.
	Hedge bool
	// HedgeDelay is the floor for the hedge delay (default 50ms); once
	// a shard has enough fan-out observations its p99 latency is used
	// instead, clamped to [HedgeDelay, Timeout/2].
	HedgeDelay time.Duration
	// ReplicaReads enables bounded-staleness replica reads: while a
	// shard's primary is healthy, scatter reads rotate round-robin
	// across the primary and every replica whose replication lag is
	// known and within StalenessBound, spreading read load instead of
	// only failing over (or hedging) to replicas.
	ReplicaReads bool
	// StalenessBound is the largest byte lag (inclusive) a replica may
	// show and still serve rotated reads. 0 admits only fully caught-up
	// replicas. Ignored unless ReplicaReads is set.
	StalenessBound int64
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Logger receives fan-out failures; nil discards.
	Logger *slog.Logger
}

// Coordinator fronts a sharded cluster with the single-node HTTP API:
// scatter-gather for queries and listings, ring routing for writes and
// per-clip reads, health-checked failover to replicas. Create with
// New, serve Handler, stop with Close.
type Coordinator struct {
	topo           atomic.Pointer[topology]
	vnodes         int
	client         *http.Client
	timeout        time.Duration
	retries        int
	budget         *retryBudget
	hedge          bool
	hedgeFloor     time.Duration
	replicaReads   bool
	stalenessBound int64
	probeInterval  time.Duration
	log            *slog.Logger
	metrics        *coordMetrics

	// reshardMu is the cutover write barrier: mutating handlers hold it
	// for read, so the rebalancer's final delta-sync + ring swap (which
	// holds it for write) sees a quiesced write path. Reads never take
	// it — they go lock-free through the topology pointer.
	reshardMu sync.RWMutex
	reshard   reshardState

	stop chan struct{}
	wg   sync.WaitGroup
}

// topology is the coordinator's routing state — the ring and the shard
// list it indexes — swapped atomically as one unit, so a reader can
// never pair a new ring with an old shard list mid-reshard.
type topology struct {
	ring   *Ring
	shards []*shard
}

// New builds a coordinator and starts its health prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	c := &Coordinator{
		vnodes:         cfg.Vnodes,
		client:         cfg.Client,
		timeout:        cfg.Timeout,
		retries:        cfg.Retries,
		hedge:          cfg.Hedge,
		hedgeFloor:     cfg.HedgeDelay,
		replicaReads:   cfg.ReplicaReads,
		stalenessBound: cfg.StalenessBound,
		probeInterval:  cfg.ProbeInterval,
		log:            cfg.Logger,
		metrics:        newCoordMetrics(),
		stop:           make(chan struct{}),
	}
	ratio := cfg.RetryBudget
	if ratio == 0 {
		ratio = 0.2
	}
	c.budget = newRetryBudget(ratio)
	if c.hedgeFloor <= 0 {
		c.hedgeFloor = 50 * time.Millisecond
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.timeout <= 0 {
		c.timeout = 10 * time.Second
	}
	if c.retries < 0 {
		c.retries = 0
	} else if cfg.Retries == 0 {
		c.retries = 1
	}
	if c.probeInterval <= 0 {
		c.probeInterval = 2 * time.Second
	}
	if c.log == nil {
		c.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	shards := make([]*shard, 0, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		shards = append(shards, newShard(i, sc))
	}
	c.topo.Store(&topology{ring: NewRing(len(shards), c.vnodes), shards: shards})
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober.
func (c *Coordinator) Close() {
	close(c.stop)
	c.wg.Wait()
}

// Handler returns the coordinator's HTTP handler. It serves the same
// endpoints a single vdbserver does, plus GET /api/cluster/status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/query", c.handleQuery)
	mux.HandleFunc("POST /api/query/batch", c.handleQueryBatch)
	mux.HandleFunc("GET /api/clips", c.handleClips)
	mux.HandleFunc("POST /api/clips", c.handleIngest)
	mux.HandleFunc("GET /api/clips/{name}", c.handleClipRead)
	mux.HandleFunc("GET /api/clips/{name}/tree", c.handleClipRead)
	mux.HandleFunc("DELETE /api/clips/{name}", c.handleClipWrite)
	mux.HandleFunc("GET /api/similar", c.handleSimilar)
	mux.HandleFunc("GET /api/cluster/status", c.handleStatus)
	mux.HandleFunc("POST /api/cluster/reshard", c.handleReshard)
	mux.HandleFunc("GET /api/health", c.handleHealth)
	mux.HandleFunc("GET /api/metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeShardError relays a shard's refusal to the client, preserving
// the status code and any Retry-After hint (a shed shard tells the
// client when to come back; the coordinator must not swallow that).
func writeShardError(w http.ResponseWriter, se *shardError, context string) {
	if se.retryAfter != "" {
		w.Header().Set("Retry-After", se.retryAfter)
	}
	writeError(w, se.code, fmt.Errorf("%s: %s", context, se.body))
}

// shardError is a non-retryable backend answer: a 4xx means the shard
// spoke and refused the request, and a 429 specifically is the shard
// shedding load — backpressure that must propagate to the client (with
// its Retry-After hint) rather than be retried into the overload or
// counted as a shard failure.
type shardError struct {
	code       int
	body       string
	retryAfter string
}

func (e *shardError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

// backpressure reports whether the error is a shard shedding load.
func (e *shardError) backpressure() bool { return e.code == http.StatusTooManyRequests }

// fetchFn performs one attempt of a shard fetch against one node.
type fetchFn func(ctx context.Context, n *node) ([]byte, error)

// shardGet fans one read to a shard through shardFetch.
func (c *Coordinator) shardGet(ctx context.Context, sh *shard, pathq string, out any) error {
	return c.shardFetch(ctx, sh, func(ctx context.Context, n *node) ([]byte, error) {
		return c.nodeGet(ctx, n, pathq, sh)
	}, out)
}

// shardFetch is the one read path to a shard: primary first with an
// optional hedged backup probe, then sequential failover across
// replicas (a down primary sorts last — read-side promotion), each node
// tried 1+Retries times with a short backoff.
//
// The first attempt is free; every extra attempt — hedge, retry or
// failover — must be paid for from the shared retry budget, so a broken
// shard degrades this one answer instead of amplifying into a retry
// storm. Network errors and 5xx answers mark the node down and move on;
// a 4xx returns immediately (the backend refused a well-delivered
// request), and a 429 returns immediately as backpressure.
func (c *Coordinator) shardFetch(ctx context.Context, sh *shard, do fetchFn, out any) error {
	c.budget.deposit()
	c.metrics.add("fetches", 1)
	order := c.readOrder(sh)

	finish := func(body []byte) error {
		if out == nil {
			return nil
		}
		return json.Unmarshal(body, out)
	}
	classify := func(err error) (*shardError, bool) {
		var se *shardError
		if asShardError(err, &se) {
			if se.backpressure() {
				c.metrics.add("backpressure", 1)
			}
			return se, true
		}
		return nil, false
	}

	// First round: the primary-order node, plus a hedged probe to the
	// next node if the first has not answered within the hedge delay.
	type result struct {
		body   []byte
		err    error
		hedged bool
	}
	resCh := make(chan result, 2) // buffered: a losing straggler must not leak its goroutine
	launch := func(n *node, hedged bool) {
		go func() {
			body, err := do(ctx, n)
			resCh <- result{body, err, hedged}
		}()
	}
	launch(order[0], false)
	inflight := 1
	hedged := false

	var hedgeC <-chan time.Time
	if c.hedge && len(order) > 1 {
		t := time.NewTimer(sh.hedgeDelay(c.hedgeFloor, c.timeout))
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for inflight > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if !c.budget.take() {
				c.metrics.add("hedges_suppressed", 1)
				continue
			}
			c.metrics.add("hedges", 1)
			launch(order[1], true)
			inflight++
			hedged = true
		case r := <-resCh:
			inflight--
			if r.err == nil {
				if r.hedged {
					c.metrics.add("hedge_wins", 1)
				}
				return finish(r.body)
			}
			if se, ok := classify(r.err); ok {
				return se
			}
			lastErr = r.err
		}
	}

	// Fallback walk: every node in order, sequentially, skipping the
	// first attempts the round above already burned.
	tried := map[*node]bool{order[0]: true}
	if hedged {
		tried[order[1]] = true
	}
	backoff := 0
	for _, n := range order {
		for attempt := 0; attempt <= c.retries; attempt++ {
			if attempt == 0 && tried[n] {
				continue
			}
			if !c.budget.take() {
				c.metrics.add("retries_suppressed", 1)
				c.metrics.add("shard_failures", 1)
				return fmt.Errorf("shard %d: retry budget exhausted: %w", sh.id, lastErr)
			}
			c.metrics.add("retries", 1)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(25<<min(backoff, 4)) * time.Millisecond):
			}
			backoff++
			body, err := do(ctx, n)
			if err == nil {
				return finish(body)
			}
			if se, ok := classify(err); ok {
				return se
			}
			lastErr = err
		}
	}
	c.metrics.add("shard_failures", 1)
	return fmt.Errorf("shard %d unreachable: %w", sh.id, lastErr)
}

func asShardError(err error, out **shardError) bool {
	se, ok := err.(*shardError)
	if ok {
		*out = se
	}
	return ok
}

// clientKeyCtx carries the inbound request's client identity through a
// handler's context into fan-out requests.
type clientKeyCtx struct{}

// clientContext returns r's context, annotated with the client identity
// header so shard-side per-client rate limits see the originating
// client rather than lumping everything under the coordinator's IP.
func clientContext(r *http.Request) context.Context {
	ctx := r.Context()
	if k := r.Header.Get(admission.ClientHeader); k != "" {
		ctx = context.WithValue(ctx, clientKeyCtx{}, k)
	}
	return ctx
}

// forwardClient stamps the originating client identity onto a fan-out
// request when the handler recorded one.
func forwardClient(ctx context.Context, req *http.Request) {
	if k, ok := ctx.Value(clientKeyCtx{}).(string); ok {
		req.Header.Set(admission.ClientHeader, k)
	}
}

// nodeGet performs one GET attempt against one node.
func (c *Coordinator) nodeGet(ctx context.Context, n *node, pathq string, sh *shard) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+pathq, nil)
	if err != nil {
		return nil, err
	}
	forwardClient(ctx, req)
	start := time.Now()
	c.metrics.add("shard_requests", 1)
	resp, err := c.client.Do(req)
	if err != nil {
		n.markDown(err)
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		n.markDown(err)
		return nil, err
	}
	if resp.StatusCode >= 500 {
		err := fmt.Errorf("%s: status %d", n.url, resp.StatusCode)
		n.markDown(err)
		return nil, err
	}
	n.markUp(nil)
	sh.observeFanout(time.Since(start))
	if resp.StatusCode != http.StatusOK {
		return nil, &shardError{
			code:       resp.StatusCode,
			body:       string(body),
			retryAfter: resp.Header.Get("Retry-After"),
		}
	}
	return body, nil
}

// scatter fans fetch to every shard of the current topology
// concurrently. A shard whose fetch fails contributes nothing and flips
// partial; a 4xx from any shard aborts the gather (the same request
// would 4xx everywhere). The shard list is captured once from the
// topology pointer, so a reshard landing mid-gather cannot tear it.
func scatter[T any](c *Coordinator, ctx context.Context, fetch func(sh *shard) (T, error)) (parts []T, partial bool, reject *shardError) {
	shards := c.topo.Load().shards
	results := make([]T, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			results[i], errs[i] = fetch(sh)
		}(i, sh)
	}
	wg.Wait()
	parts = make([]T, 0, len(results))
	for i, err := range errs {
		if err != nil {
			var se *shardError
			if asShardError(err, &se) {
				return nil, false, se
			}
			c.log.Warn("shard dropped from gather", "shard", i, "err", err)
			partial = true
			continue
		}
		parts = append(parts, results[i])
	}
	return parts, partial, nil
}

// parseQueryPoint mirrors the single-node handler's query parsing so
// the coordinator can (a) reject bad queries before fanning out and
// (b) recompute the distance order the shards used when merging.
func parseQueryPoint(r *http.Request) (varindex.Query, error) {
	if imp := r.URL.Query().Get("impression"); imp != "" {
		parsed, err := impression.Parse(imp)
		if err != nil {
			return varindex.Query{}, err
		}
		return parsed.Query(), nil
	}
	var q varindex.Query
	var err error
	if q.VarBA, err = strconv.ParseFloat(r.URL.Query().Get("varba"), 64); err != nil {
		return varindex.Query{}, fmt.Errorf("need varba and varoa (or impression=...)")
	}
	if q.VarOA, err = strconv.ParseFloat(r.URL.Query().Get("varoa"), 64); err != nil {
		return varindex.Query{}, fmt.Errorf("need varba and varoa (or impression=...)")
	}
	if err := q.Validate(); err != nil {
		return varindex.Query{}, err
	}
	return q, nil
}

// QueryResponseJSON is the coordinator's GET /api/query answer: the
// merged matches plus the partial marker. (A single node returns the
// bare match array; the coordinator wraps it because "who answered" is
// meaningful only behind a scatter.)
type QueryResponseJSON struct {
	Matches []server.MatchJSON `json:"matches"`
	Partial bool               `json:"partial"`
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := parseQueryPoint(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pathq := "/api/query?" + r.URL.RawQuery
	ctx := clientContext(r)
	parts, partial, reject := scatter(c, ctx, func(sh *shard) ([]server.MatchJSON, error) {
		var matches []server.MatchJSON
		err := c.shardGet(ctx, sh, pathq, &matches)
		return matches, err
	})
	if reject != nil {
		writeShardError(w, reject, "shard rejected query")
		return
	}
	if len(parts) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no shard reachable"))
		return
	}
	c.metrics.add("queries", 1)
	if partial {
		c.metrics.add("partial", 1)
	}
	w.Header().Set(HeaderPartial, strconv.FormatBool(partial))
	writeJSON(w, QueryResponseJSON{Matches: mergeMatches(q, parts), Partial: partial})
}

// BatchResponseJSON is the coordinator's POST /api/query/batch answer:
// the single-node shape plus the partial marker.
type BatchResponseJSON struct {
	Results [][]server.MatchJSON `json:"results"`
	Partial bool                 `json:"partial"`
}

func (c *Coordinator) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("reading batch body: %w", err))
		return
	}
	var req server.BatchRequestJSON
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no queries"))
		return
	}
	// The merge needs each query's point in the similarity plane; the
	// shards re-derive the same points from the forwarded body.
	points := make([]varindex.Query, len(req.Queries))
	for i, bq := range req.Queries {
		switch {
		case bq.Impression != "":
			parsed, err := impression.Parse(bq.Impression)
			if err != nil {
				writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("query %d: %w", i, err))
				return
			}
			points[i] = parsed.Query()
		case bq.VarBA != nil && bq.VarOA != nil:
			points[i] = varindex.Query{VarBA: *bq.VarBA, VarOA: *bq.VarOA}
		default:
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("query %d: need varba and varoa (or impression)", i))
			return
		}
	}
	ctx := clientContext(r)
	parts, partial, reject := scatter(c, ctx, func(sh *shard) ([][]server.MatchJSON, error) {
		var resp server.BatchResponseJSON
		err := c.shardPost(ctx, sh, "/api/query/batch", body, &resp)
		return resp.Results, err
	})
	if reject != nil {
		writeShardError(w, reject, "shard rejected batch")
		return
	}
	if len(parts) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no shard reachable"))
		return
	}
	c.metrics.add("batches", 1)
	if partial {
		c.metrics.add("partial", 1)
	}
	merged := make([][]server.MatchJSON, len(points))
	for i := range points {
		per := make([][]server.MatchJSON, 0, len(parts))
		for _, p := range parts {
			if i < len(p) {
				per = append(per, p[i])
			}
		}
		merged[i] = mergeMatches(points[i], per)
	}
	w.Header().Set(HeaderPartial, strconv.FormatBool(partial))
	writeJSON(w, BatchResponseJSON{Results: merged, Partial: partial})
}

// shardPost sends one JSON POST to a shard with the same hedging,
// budget and failover discipline as shardGet. The body is a byte
// slice, so every attempt resends identical bytes (batch queries are
// idempotent, which is also what makes them safe to hedge).
func (c *Coordinator) shardPost(ctx context.Context, sh *shard, path string, body []byte, out any) error {
	return c.shardFetch(ctx, sh, func(ctx context.Context, n *node) ([]byte, error) {
		return c.nodePost(ctx, n, sh, path, body)
	}, out)
}

func (c *Coordinator) nodePost(ctx context.Context, n *node, sh *shard, path string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	forwardClient(ctx, req)
	start := time.Now()
	c.metrics.add("shard_requests", 1)
	resp, err := c.client.Do(req)
	if err != nil {
		n.markDown(err)
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		n.markDown(err)
		return nil, err
	}
	if resp.StatusCode >= 500 {
		err := fmt.Errorf("%s: status %d", n.url, resp.StatusCode)
		n.markDown(err)
		return nil, err
	}
	n.markUp(nil)
	sh.observeFanout(time.Since(start))
	if resp.StatusCode != http.StatusOK {
		return nil, &shardError{
			code:       resp.StatusCode,
			body:       string(data),
			retryAfter: resp.Header.Get("Retry-After"),
		}
	}
	return data, nil
}

func (c *Coordinator) handleClips(w http.ResponseWriter, r *http.Request) {
	ctx := clientContext(r)
	parts, partial, reject := scatter(c, ctx, func(sh *shard) ([]server.ClipSummary, error) {
		var clips []server.ClipSummary
		err := c.shardGet(ctx, sh, "/api/clips", &clips)
		return clips, err
	})
	if reject != nil {
		writeShardError(w, reject, "shard rejected listing")
		return
	}
	if len(parts) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no shard reachable"))
		return
	}
	if partial {
		c.metrics.add("partial", 1)
	}
	w.Header().Set(HeaderPartial, strconv.FormatBool(partial))
	writeJSON(w, mergeClipLists(parts))
}

// handleIngest routes an upload to the shard that owns the clip name.
// The coordinator needs the name before it reads the body — the ring
// cannot route on bytes it has not seen — so ?name= is mandatory here
// even for VDBF uploads that embed one.
//
// Writes hold the reshard barrier for read across the whole proxy: a
// cutover cannot land while an upload is in flight, so every write is
// either fully visible to the rebalancer's pre-cutover delta sync (it
// finished before the barrier) or routed by the new ring (it started
// after) — never lost in between.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("clustered ingest needs a ?name= parameter (the ring routes on it)"))
		return
	}
	c.reshardMu.RLock()
	defer c.reshardMu.RUnlock()
	t := c.topo.Load()
	sh := t.shards[t.ring.Owner(name)]
	c.metrics.add("writes", 1)
	c.proxy(w, r, sh.primary(), "/api/clips?"+r.URL.RawQuery)
}

// handleClipWrite routes DELETE /api/clips/{name} to the owning
// shard's primary, under the same reshard barrier as ingest.
func (c *Coordinator) handleClipWrite(w http.ResponseWriter, r *http.Request) {
	c.reshardMu.RLock()
	defer c.reshardMu.RUnlock()
	t := c.topo.Load()
	sh := t.shards[t.ring.Owner(r.PathValue("name"))]
	c.metrics.add("writes", 1)
	c.proxy(w, r, sh.primary(), r.URL.RequestURI())
}

// handleClipRead routes a per-clip read to the owning shard with
// replica failover.
func (c *Coordinator) handleClipRead(w http.ResponseWriter, r *http.Request) {
	t := c.topo.Load()
	sh := t.shards[t.ring.Owner(r.PathValue("name"))]
	c.proxyRead(w, r, sh)
}

// handleSimilar routes query-by-example to the shard owning the
// example clip. The answer is scoped to that shard's partition of the
// index (the example's features live only there); docs/CLUSTER.md
// records the limitation.
func (c *Coordinator) handleSimilar(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("clip")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("need clip parameter"))
		return
	}
	t := c.topo.Load()
	sh := t.shards[t.ring.Owner(name)]
	c.proxyRead(w, r, sh)
}

// proxyRead forwards a GET to a shard with failover, relaying the
// backend's status and body verbatim.
func (c *Coordinator) proxyRead(w http.ResponseWriter, r *http.Request, sh *shard) {
	var raw json.RawMessage
	err := c.shardGet(clientContext(r), sh, r.URL.RequestURI(), &raw)
	if err != nil {
		var se *shardError
		if asShardError(err, &se) {
			if se.retryAfter != "" {
				w.Header().Set("Retry-After", se.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(se.code)
			_, _ = io.WriteString(w, se.body)
			return
		}
		writeError(w, http.StatusBadGateway, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// proxy streams one request to one node and relays the answer. Writes
// go through here: they are not retried (a resend could double-apply)
// and not bounded by the fan-out timeout (an upload analysis runs as
// long as it runs).
func (c *Coordinator) proxy(w http.ResponseWriter, r *http.Request, n *node, pathq string) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, n.url+pathq, r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	if k := r.Header.Get(admission.ClientHeader); k != "" {
		req.Header.Set(admission.ClientHeader, k)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		n.markDown(err)
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard write failed: %w", err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode < 500 {
		n.markUp(nil)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		c.metrics.add("backpressure", 1)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.status())
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	shards := c.topo.Load().shards
	up := 0
	for _, sh := range shards {
		for _, n := range sh.nodes {
			if n.isUp() {
				up++
				break
			}
		}
	}
	writeJSON(w, map[string]any{
		"status":          "ok",
		"role":            "coordinator",
		"shards":          len(shards),
		"shardsReachable": up,
	})
}

// handleMetrics serves the coordinator's counters in Prometheus text
// format, plus per-node reachability gauges.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, m := range []struct{ name, help, key string }{
		{"videodb_coord_queries_total", "Scatter-gather queries served.", "queries"},
		{"videodb_coord_batches_total", "Scatter-gather batch requests served.", "batches"},
		{"videodb_coord_partial_total", "Answers assembled without every shard.", "partial"},
		{"videodb_coord_writes_total", "Writes routed to owning shards.", "writes"},
		{"videodb_coord_shard_requests_total", "Fan-out requests attempted against shard nodes.", "shard_requests"},
		{"videodb_coord_shard_failures_total", "Fan-outs that exhausted every node of a shard.", "shard_failures"},
		{"videodb_coord_fetches_total", "Primary shard fetches (the base traffic retries are budgeted against).", "fetches"},
		{"videodb_coord_retries_total", "Retry and failover attempts paid from the retry budget.", "retries"},
		{"videodb_coord_retries_suppressed_total", "Retry attempts refused because the budget was dry.", "retries_suppressed"},
		{"videodb_coord_hedges_total", "Hedged backup probes fired.", "hedges"},
		{"videodb_coord_hedge_wins_total", "Hedged probes that answered before the primary attempt.", "hedge_wins"},
		{"videodb_coord_hedges_suppressed_total", "Hedges refused because the budget was dry.", "hedges_suppressed"},
		{"videodb_coord_backpressure_total", "Shard answers classified as backpressure (429, propagated, never retried).", "backpressure"},
		{"videodb_coord_reshards_total", "Reshard operations completed successfully.", "reshards"},
		{"videodb_coord_reshards_failed_total", "Reshard operations that failed and rolled back to the old ring.", "reshards_failed"},
		{"videodb_coord_reshard_moved_clips_total", "Clips migrated between shards by reshard operations.", "reshard_moved"},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			m.name, m.help, m.name, m.name, c.metrics.get(m.key))
	}
	shards := c.topo.Load().shards
	fmt.Fprintln(w, "# HELP videodb_coord_node_up Whether a shard node answered its last probe or request.")
	fmt.Fprintln(w, "# TYPE videodb_coord_node_up gauge")
	for _, sh := range shards {
		for _, n := range sh.nodes {
			up := 0
			if n.isUp() {
				up = 1
			}
			role := "primary"
			if n.replica {
				role = "replica"
			}
			fmt.Fprintf(w, "videodb_coord_node_up{shard=\"%d\",role=%q,url=%q} %d\n", sh.id, role, n.url, up)
		}
	}
	fmt.Fprintln(w, "# HELP videodb_coord_shard_reads_total Shard reads by the role of the node chosen to answer first (read balance).")
	fmt.Fprintln(w, "# TYPE videodb_coord_shard_reads_total counter")
	for _, sh := range shards {
		fmt.Fprintf(w, "videodb_coord_shard_reads_total{shard=\"%d\",role=\"primary\"} %d\n", sh.id, sh.primaryReads.Load())
		fmt.Fprintf(w, "videodb_coord_shard_reads_total{shard=\"%d\",role=\"replica\"} %d\n", sh.id, sh.replicaReads.Load())
	}
}

// coordMetrics is a mutex-guarded counter map: the coordinator has a
// handful of counters and no latency-critical path through them.
type coordMetrics struct {
	mu       sync.Mutex
	counters map[string]int64
}

func newCoordMetrics() *coordMetrics {
	return &coordMetrics{counters: make(map[string]int64)}
}

func (m *coordMetrics) add(key string, n int64) {
	m.mu.Lock()
	m.counters[key] += n
	m.mu.Unlock()
}

func (m *coordMetrics) get(key string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[key]
}

// Keys returns the sorted counter names (used by tests).
func (m *coordMetrics) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.counters))
	for k := range m.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
