package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("clip-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("two rings of the same size disagree on %q: %d vs %d",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingOwnerInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		r := NewRing(n, 0)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		for i := 0; i < 500; i++ {
			o := r.Owner(fmt.Sprintf("k%d", i))
			if o < 0 || o >= n {
				t.Fatalf("owner %d out of range [0,%d)", o, n)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const n, keys = 4, 20000
	r := NewRing(n, 0)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("clip-%d.vdbf", i))]++
	}
	want := keys / n
	for s, c := range counts {
		// 64 vnodes keeps imbalance well inside ±40% of fair share.
		if c < want*6/10 || c > want*14/10 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d)", s, c, keys, want)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: growing
// the ring from n to n+1 shards moves roughly 1/(n+1) of the keys, and
// every moved key moves TO the new shard (no key shuffles between
// surviving shards).
func TestRingMinimalMovement(t *testing.T) {
	const n, keys = 4, 20000
	old := NewRing(n, 0)
	grown := NewRing(n+1, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("clip-%d", i)
		a, b := old.Owner(key), grown.Owner(key)
		if a == b {
			continue
		}
		if b != n {
			t.Fatalf("key %q moved from shard %d to surviving shard %d, not the new shard", key, a, b)
		}
		moved++
	}
	share := keys / (n + 1)
	if moved < share/2 || moved > share*2 {
		t.Errorf("grow moved %d keys, want about %d (1/%d of %d)", moved, share, n+1, keys)
	}
}

// TestRingDiffMovedSetExact is the rebalancer's correctness property:
// across 1000 randomized membership changes (random sizes, random
// grow/shrink deltas, random vnode counts — including rings whose vnode
// counts differ), the arc-diff's moved set is exactly the set of keys
// whose owner changed between the rings. No over-migration (a key the
// diff moves but whose owner is unchanged) and no under-migration (an
// owner change the diff misses) — the property the migration engine's
// "copy exactly the moved clips" step rests on.
func TestRingDiffMovedSetExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const topologies = 1000
	const keysPer = 150
	for i := 0; i < topologies; i++ {
		oldN := 1 + rng.Intn(9)
		newN := 1 + rng.Intn(9)
		oldV := 1 + rng.Intn(48)
		newV := oldV
		if rng.Intn(4) == 0 {
			newV = 1 + rng.Intn(48)
		}
		old := NewRing(oldN, oldV)
		next := NewRing(newN, newV)
		d := old.Diff(next)
		if f := d.MovedFraction(); f < 0 || f > 1 {
			t.Fatalf("topology %d (%d->%d shards): MovedFraction %v out of [0,1]", i, oldN, newN, f)
		}
		for k := 0; k < keysPer; k++ {
			name := fmt.Sprintf("clip-%d-%d.vdbf", i, k)
			wantFrom, wantTo := old.Owner(name), next.Owner(name)
			if got := d.Moved(name); got != (wantFrom != wantTo) {
				t.Fatalf("topology %d (%d->%d shards, %d/%d vnodes): key %q Moved=%v, owners %d->%d",
					i, oldN, newN, oldV, newV, name, got, wantFrom, wantTo)
			}
			from, to := d.Owners(name)
			if from != wantFrom || to != wantTo {
				t.Fatalf("topology %d: key %q Owners()=(%d,%d), ring owners (%d,%d)",
					i, name, from, to, wantFrom, wantTo)
			}
		}
	}
}

// TestRingDiffGrowMovesOnlyToNewShard pins the minimal-movement shape
// of the diff itself: growing n -> n+1 with the vnode count held fixed,
// every moved arc's destination is the new shard and the moved fraction
// is near 1/(n+1).
func TestRingDiffGrowMovesOnlyToNewShard(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		old := NewRing(n, 0)
		grown := NewRing(n+1, 0)
		d := old.Diff(grown)
		for i := 0; i < 3000; i++ {
			name := fmt.Sprintf("clip-%d", i)
			if !d.Moved(name) {
				continue
			}
			if _, to := d.Owners(name); to != n {
				t.Fatalf("n=%d: moved key %q lands on shard %d, not the new shard %d", n, name, to, n)
			}
		}
		fair := 1.0 / float64(n+1)
		if f := d.MovedFraction(); f < fair/2 || f > fair*2 {
			t.Errorf("n=%d: moved fraction %.4f, want about %.4f", n, f, fair)
		}
	}
}

func TestRingSingleShardOwnsAll(t *testing.T) {
	r := NewRing(1, 8)
	for i := 0; i < 100; i++ {
		if o := r.Owner(fmt.Sprintf("x%d", i)); o != 0 {
			t.Fatalf("single-shard ring routed %d to shard %d", i, o)
		}
	}
}
