package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 0)
	b := NewRing(5, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("clip-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("two rings of the same size disagree on %q: %d vs %d",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingOwnerInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		r := NewRing(n, 0)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		for i := 0; i < 500; i++ {
			o := r.Owner(fmt.Sprintf("k%d", i))
			if o < 0 || o >= n {
				t.Fatalf("owner %d out of range [0,%d)", o, n)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const n, keys = 4, 20000
	r := NewRing(n, 0)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("clip-%d.vdbf", i))]++
	}
	want := keys / n
	for s, c := range counts {
		// 64 vnodes keeps imbalance well inside ±40% of fair share.
		if c < want*6/10 || c > want*14/10 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d)", s, c, keys, want)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: growing
// the ring from n to n+1 shards moves roughly 1/(n+1) of the keys, and
// every moved key moves TO the new shard (no key shuffles between
// surviving shards).
func TestRingMinimalMovement(t *testing.T) {
	const n, keys = 4, 20000
	old := NewRing(n, 0)
	grown := NewRing(n+1, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("clip-%d", i)
		a, b := old.Owner(key), grown.Owner(key)
		if a == b {
			continue
		}
		if b != n {
			t.Fatalf("key %q moved from shard %d to surviving shard %d, not the new shard", key, a, b)
		}
		moved++
	}
	share := keys / (n + 1)
	if moved < share/2 || moved > share*2 {
		t.Errorf("grow moved %d keys, want about %d (1/%d of %d)", moved, share, n+1, keys)
	}
}

func TestRingSingleShardOwnsAll(t *testing.T) {
	r := NewRing(1, 8)
	for i := 0; i < 100; i++ {
		if o := r.Owner(fmt.Sprintf("x%d", i)); o != 0 {
			t.Fatalf("single-shard ring routed %d to shard %d", i, o)
		}
	}
}
