package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
	"videodb/internal/wal"
)

// newPrimary builds a journaled database behind an HTTP server — the
// shape a cluster shard primary runs in.
func newPrimary(t *testing.T) (*core.Database, *wal.ClipJournal, *httptest.Server) {
	t.Helper()
	db := newDB(t)
	j, res, err := wal.RecoverAndOpen(db, filepath.Join(t.TempDir(), "p.wal"), wal.PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged {
		t.Fatalf("fresh journal damaged: %s", res.Reason)
	}
	t.Cleanup(func() { _ = j.Close() })
	db.SetJournal(j)
	ts := httptest.NewServer(server.New(db, server.WithJournal(j)).Handler())
	t.Cleanup(ts.Close)
	return db, j, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sameRecords compares two databases' clip records by name, frame
// count, and every shot's feature vector — the state the query path
// answers from.
func sameRecords(a, b *core.Database) error {
	ra, rb := a.Records(), b.Records()
	if len(ra) != len(rb) {
		return fmt.Errorf("clip counts differ: %d vs %d", len(ra), len(rb))
	}
	byName := make(map[string]*core.ClipRecord, len(rb))
	for _, r := range rb {
		byName[r.Name] = r
	}
	for _, r := range ra {
		o, ok := byName[r.Name]
		if !ok {
			return fmt.Errorf("clip %q missing on replica", r.Name)
		}
		if r.Frames != o.Frames || r.FPS != o.FPS || len(r.Shots) != len(o.Shots) {
			return fmt.Errorf("clip %q differs: frames %d/%d shots %d/%d",
				r.Name, r.Frames, o.Frames, len(r.Shots), len(o.Shots))
		}
		for i := range r.Shots {
			fa, fb := r.Shots[i].Feature, o.Shots[i].Feature
			if fa.VarBA != fb.VarBA || fa.VarOA != fb.VarOA {
				return fmt.Errorf("clip %q shot %d feature differs: (%g,%g) vs (%g,%g)",
					r.Name, i, fa.VarBA, fa.VarOA, fb.VarBA, fb.VarOA)
			}
		}
	}
	return nil
}

// TestReplicaCatchUp is the replication differential: a replica that
// bootstraps mid-stream and tails the WAL converges to the primary's
// exact records through ingests and deletes. Run under -race, it also
// exercises concurrent ApplySnapshot/ApplyRecord against live reads.
func TestReplicaCatchUp(t *testing.T) {
	db, _, ts := newPrimary(t)
	clips := makeClips(t, 4)

	// Two clips before the replica exists: they arrive via bootstrap.
	for _, c := range clips[:2] {
		if _, err := db.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	rdb := newDB(t)
	rep := StartReplica(rdb, ts.URL, WithReplicaInterval(20*time.Millisecond))
	defer rep.Close()
	waitFor(t, "bootstrap", func() bool { return rep.Stats().Bootstraps >= 1 && len(rdb.Clips()) == 2 })

	// Two more plus a delete after: they arrive via WAL shipping.
	for _, c := range clips[2:] {
		if _, err := db.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Remove(clips[0].Name); err != nil {
		t.Fatal(err)
	}
	// LagBytes alone is not a convergence signal — it measures distance
	// to the primary size seen at the last poll — so wait on content.
	waitFor(t, "WAL catch-up", func() bool { return sameRecords(db, rdb) == nil })
	if st := rep.Stats(); st.Applied < 3 {
		t.Errorf("replica applied %d records, want >= 3 (2 ingests + 1 delete)", st.Applied)
	}
}

// TestReplicaSurvivesRotation rotates the primary's journal (the
// post-snapshot generation change) under a live replica: the stale cut
// must 409, the replica must re-bootstrap, and the stream must
// converge again.
func TestReplicaSurvivesRotation(t *testing.T) {
	db, j, ts := newPrimary(t)
	clips := makeClips(t, 3)
	if _, err := db.Ingest(clips[0]); err != nil {
		t.Fatal(err)
	}
	rdb := newDB(t)
	rep := StartReplica(rdb, ts.URL, WithReplicaInterval(20*time.Millisecond))
	defer rep.Close()
	waitFor(t, "initial catch-up", func() bool { return len(rdb.Clips()) == 1 && rep.Stats().LagBytes == 0 })

	// Snapshot-style rotation: capture the cut and rotate to it. The
	// generation token changes, invalidating the replica's offset.
	snap := db.BeginSnapshot()
	cut, ok := snap.JournalCut()
	if !ok {
		t.Fatal("no journal cut captured")
	}
	if err := j.RotateTo(cut); err != nil {
		t.Fatal(err)
	}
	for _, c := range clips[1:] {
		if _, err := db.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "re-converge after rotation", func() bool {
		return rep.Stats().Bootstraps >= 2 && sameRecords(db, rdb) == nil
	})
}

// TestReplicaServerReadOnly runs the replica behind the full vdbserver
// wiring (read-only server + health hook) and checks writes are
// refused while reads and health flow.
func TestReplicaServerReadOnly(t *testing.T) {
	db, _, ts := newPrimary(t)
	if _, err := db.Ingest(makeClips(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	rdb := newDB(t)
	rep := StartReplica(rdb, ts.URL, WithReplicaInterval(20*time.Millisecond))
	defer rep.Close()
	rts := httptest.NewServer(server.New(rdb,
		server.WithReadOnly("replica of "+ts.URL),
		server.WithHealthInfo(rep.HealthInfo),
		server.WithExtraMetrics(rep.Metrics),
	).Handler())
	defer rts.Close()
	waitFor(t, "replica catch-up", func() bool { return len(rdb.Clips()) == 1 })

	req, _ := http.NewRequest(http.MethodDelete, rts.URL+"/api/clips/clip-00", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("delete on replica: status %d, want 403", resp.StatusCode)
	}

	var health map[string]any
	if code, _ := getJSON(t, rts.URL+"/api/health", &health); code != http.StatusOK {
		t.Fatalf("replica health: status %d", code)
	}
	if health["readOnly"] != true {
		t.Error("replica health does not report readOnly")
	}
	if _, ok := health["replicationCut"]; !ok {
		t.Error("replica health misses replicationCut")
	}
	var matches []server.MatchJSON
	if code, _ := getJSON(t, rts.URL+"/api/query?varba=25&varoa=25", &matches); code != http.StatusOK {
		t.Fatalf("query on replica: status %d", code)
	}
}

// TestReplicaPromotionOnPrimaryDeath is the failover path: a shard
// whose primary dies keeps answering scatter reads through its replica
// — not partial — while a shard with no replica goes partial.
func TestReplicaPromotionOnPrimaryDeath(t *testing.T) {
	db, _, ts := newPrimary(t)
	clips := makeClips(t, 3)
	for _, c := range clips {
		if _, err := db.Ingest(c); err != nil {
			t.Fatal(err)
		}
	}
	rdb := newDB(t)
	rep := StartReplica(rdb, ts.URL, WithReplicaInterval(20*time.Millisecond))
	defer rep.Close()
	rts := httptest.NewServer(server.New(rdb,
		server.WithReadOnly("replica of "+ts.URL),
		server.WithHealthInfo(rep.HealthInfo),
	).Handler())
	defer rts.Close()
	waitFor(t, "replica catch-up", func() bool {
		return len(rdb.Clips()) == len(clips) && rep.Stats().LagBytes == 0
	})

	coord, err := New(Config{
		Shards:        []ShardConfig{{Primary: ts.URL, Replicas: []string{rts.URL}}},
		ProbeInterval: 100 * time.Millisecond,
		Timeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	var before QueryResponseJSON
	if code, _ := getJSON(t, front.URL+"/api/query?varba=25&varoa=25", &before); code != http.StatusOK {
		t.Fatalf("query before failover: status %d", code)
	}

	ts.Close() // primary dies
	var after QueryResponseJSON
	code, hdr := getJSON(t, front.URL+"/api/query?varba=25&varoa=25", &after)
	if code != http.StatusOK {
		t.Fatalf("query after primary death: status %d, want 200 via replica", code)
	}
	if after.Partial || hdr.Get(HeaderPartial) == "true" {
		t.Fatal("answer went partial although a caught-up replica was available")
	}
	if len(after.Matches) != len(before.Matches) {
		t.Fatalf("replica answered %d matches, primary answered %d", len(after.Matches), len(before.Matches))
	}
}
