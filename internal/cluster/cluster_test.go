package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/server"
	"videodb/internal/synth"
	"videodb/internal/video"
)

// makeClips synthesizes n small clips with distinct seeds.
func makeClips(t *testing.T, n int) []*video.Clip {
	t.Helper()
	clips := make([]*video.Clip, n)
	genres := []synth.Genre{synth.GenreDrama, synth.GenreNews, synth.GenreCartoon}
	for i := range clips {
		spec, err := synth.BuildClip(genres[i%len(genres)], synth.ClipParams{
			Name: fmt.Sprintf("clip-%02d", i), Shots: 5, DurationSec: 20, Seed: uint64(900 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		clip, _, err := synth.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		clips[i] = clip
	}
	return clips
}

func newDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.Open(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// testCluster is K shards behind a coordinator, plus a single node
// holding the union corpus as the equivalence oracle.
type testCluster struct {
	union    *core.Database
	shardDBs []*core.Database
	backends []*httptest.Server
	coord    *Coordinator
	front    *httptest.Server
}

// newTestCluster partitions clips across k shards by the same ring the
// coordinator routes with, and ingests the union into a single node.
func newTestCluster(t *testing.T, k int, clips []*video.Clip) *testCluster {
	t.Helper()
	tc := &testCluster{union: newDB(t)}
	ring := NewRing(k, 0)
	cfg := Config{ProbeInterval: 200 * time.Millisecond, Timeout: 5 * time.Second}
	for i := 0; i < k; i++ {
		db := newDB(t)
		ts := httptest.NewServer(server.New(db).Handler())
		t.Cleanup(ts.Close)
		tc.shardDBs = append(tc.shardDBs, db)
		tc.backends = append(tc.backends, ts)
		cfg.Shards = append(cfg.Shards, ShardConfig{Primary: ts.URL})
	}
	for _, clip := range clips {
		if _, err := tc.union.Ingest(clip); err != nil {
			t.Fatal(err)
		}
		if _, err := tc.shardDBs[ring.Owner(clip.Name)].Ingest(clip); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	tc.coord = coord
	tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func getJSON(t *testing.T, url string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode, resp.Header
}

// queryPoints derives a query workload from the corpus itself (every
// shot's own feature point must match itself) plus a coarse grid.
func queryPoints(db *core.Database) [][2]float64 {
	var pts [][2]float64
	for _, rec := range db.Records() {
		for _, sr := range rec.Shots {
			pts = append(pts, [2]float64{sr.Feature.VarBA, sr.Feature.VarOA})
		}
	}
	for ba := 0.0; ba <= 100; ba += 25 {
		for oa := 0.0; oa <= 100; oa += 25 {
			pts = append(pts, [2]float64{ba, oa})
		}
	}
	return pts
}

// TestScatterGatherEquivalence is the property at the heart of the
// coordinator: for any query, the merged scatter-gather answer over K
// shards is byte-for-byte the single-node answer over the union corpus.
func TestScatterGatherEquivalence(t *testing.T) {
	clips := makeClips(t, 6)
	for _, k := range []int{1, 2, 3} {
		tc := newTestCluster(t, k, clips)
		single := httptest.NewServer(server.New(tc.union).Handler())
		t.Cleanup(single.Close)
		for _, p := range queryPoints(tc.union) {
			q := fmt.Sprintf("/api/query?varba=%g&varoa=%g", p[0], p[1])
			var want []server.MatchJSON
			if code, _ := getJSON(t, single.URL+q, &want); code != http.StatusOK {
				t.Fatalf("single node: status %d for %s", code, q)
			}
			var got QueryResponseJSON
			code, hdr := getJSON(t, tc.front.URL+q, &got)
			if code != http.StatusOK {
				t.Fatalf("k=%d: coordinator status %d for %s", k, code, q)
			}
			if got.Partial {
				t.Fatalf("k=%d: healthy cluster answered partial for %s", k, q)
			}
			if hdr.Get(HeaderPartial) != "false" {
				t.Fatalf("k=%d: %s header = %q, want false", k, HeaderPartial, hdr.Get(HeaderPartial))
			}
			if len(want) == 0 && len(got.Matches) == 0 {
				continue
			}
			if !reflect.DeepEqual(got.Matches, want) {
				t.Fatalf("k=%d: merged answer differs from single node for %s\n got: %+v\nwant: %+v",
					k, q, got.Matches, want)
			}
		}
	}
}

func TestBatchEquivalence(t *testing.T) {
	clips := makeClips(t, 6)
	tc := newTestCluster(t, 3, clips)
	single := httptest.NewServer(server.New(tc.union).Handler())
	t.Cleanup(single.Close)

	var req server.BatchRequestJSON
	for _, p := range queryPoints(tc.union) {
		ba, oa := p[0], p[1]
		req.Queries = append(req.Queries, server.BatchQueryJSON{VarBA: &ba, VarOA: &oa})
	}
	req.Queries = append(req.Queries, server.BatchQueryJSON{Impression: "bg=high obj=low"})
	body, _ := json.Marshal(req)

	post := func(url string, out any) int {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatalf("decoding %s: %v", url, err)
			}
		}
		return resp.StatusCode
	}
	var want server.BatchResponseJSON
	if code := post(single.URL+"/api/query/batch", &want); code != http.StatusOK {
		t.Fatalf("single node batch: status %d", code)
	}
	var got BatchResponseJSON
	if code := post(tc.front.URL+"/api/query/batch", &got); code != http.StatusOK {
		t.Fatalf("coordinator batch: status %d", code)
	}
	if got.Partial {
		t.Fatal("healthy cluster answered batch partial")
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("batch result count %d, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if len(want.Results[i]) == 0 && len(got.Results[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got.Results[i], want.Results[i]) {
			t.Fatalf("batch query %d differs\n got: %+v\nwant: %+v", i, got.Results[i], want.Results[i])
		}
	}
}

func TestClipsListingMerged(t *testing.T) {
	clips := makeClips(t, 6)
	tc := newTestCluster(t, 3, clips)
	var got []server.ClipSummary
	if code, _ := getJSON(t, tc.front.URL+"/api/clips", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got) != len(clips) {
		t.Fatalf("listing has %d clips, want %d", len(got), len(clips))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Name < got[j].Name }) {
		t.Error("merged listing is not sorted by name")
	}
}

// TestClipRouting checks per-clip reads and deletes land on the owning
// shard through the coordinator.
func TestClipRouting(t *testing.T) {
	clips := makeClips(t, 4)
	tc := newTestCluster(t, 3, clips)
	ring := NewRing(3, 0)

	var one struct {
		server.ClipSummary
		ShotTable []server.ShotJSON `json:"shotTable"`
	}
	if code, _ := getJSON(t, tc.front.URL+"/api/clips/"+clips[0].Name, &one); code != http.StatusOK {
		t.Fatalf("per-clip read through coordinator: status %d", code)
	}
	if one.Name != clips[0].Name || len(one.ShotTable) == 0 {
		t.Fatalf("per-clip read returned %+v", one)
	}
	if code, _ := getJSON(t, tc.front.URL+"/api/clips/no-such-clip", nil); code != http.StatusNotFound {
		t.Fatalf("missing clip: status %d, want 404", code)
	}

	victim := clips[1].Name
	owner := ring.Owner(victim)
	req, _ := http.NewRequest(http.MethodDelete, tc.front.URL+"/api/clips/"+victim, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete through coordinator: status %d", resp.StatusCode)
	}
	if _, ok := tc.shardDBs[owner].Clip(victim); ok {
		t.Fatalf("clip %q still on owning shard %d after coordinator delete", victim, owner)
	}

	resp2, err := http.Post(tc.front.URL+"/api/clips", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless clustered ingest: status %d, want 400", resp2.StatusCode)
	}
}

// TestShardDownPartial kills one shard and checks the scatter paths
// degrade to partial answers instead of failing, and that the status
// endpoint reports the dead node.
func TestShardDownPartial(t *testing.T) {
	clips := makeClips(t, 6)
	tc := newTestCluster(t, 3, clips)
	tc.backends[1].Close() // kill shard 1

	var got QueryResponseJSON
	code, hdr := getJSON(t, tc.front.URL+"/api/query?varba=25&varoa=25", &got)
	if code != http.StatusOK {
		t.Fatalf("query with a dead shard: status %d, want 200", code)
	}
	if !got.Partial || hdr.Get(HeaderPartial) != "true" {
		t.Fatalf("query with a dead shard: partial=%v header=%q, want true", got.Partial, hdr.Get(HeaderPartial))
	}

	var listing []server.ClipSummary
	code, hdr = getJSON(t, tc.front.URL+"/api/clips", &listing)
	if code != http.StatusOK || hdr.Get(HeaderPartial) != "true" {
		t.Fatalf("listing with a dead shard: status %d partial=%q", code, hdr.Get(HeaderPartial))
	}

	var st StatusJSON
	if code, _ := getJSON(t, tc.front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status endpoint: %d", code)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("status has %d shards, want 3", len(st.Shards))
	}
	if st.Shards[1].Nodes[0].Up {
		t.Error("status still reports the killed shard as up")
	}
	if st.PartialQueries == 0 {
		t.Error("status counted no partial queries after a degraded answer")
	}

	// All shards down: scatter reads answer 503, not empty-but-OK.
	tc.backends[0].Close()
	tc.backends[2].Close()
	if code, _ := getJSON(t, tc.front.URL+"/api/query?varba=25&varoa=25", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("query with every shard dead: status %d, want 503", code)
	}
}

// TestBadQueryRejectedBeforeFanout checks the coordinator validates
// queries locally instead of scattering garbage.
func TestBadQueryRejectedBeforeFanout(t *testing.T) {
	tc := newTestCluster(t, 2, makeClips(t, 2))
	if code, _ := getJSON(t, tc.front.URL+"/api/query", nil); code != http.StatusBadRequest {
		t.Fatalf("missing params: status %d, want 400", code)
	}
	if code, _ := getJSON(t, tc.front.URL+"/api/query?varba=-3&varoa=1", nil); code != http.StatusBadRequest {
		t.Fatalf("negative variance: status %d, want 400", code)
	}
	resp, err := http.Post(tc.front.URL+"/api/query/batch", "application/json",
		bytes.NewReader([]byte(`{"queries":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
}
