package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a stub shard node: a mutable /api/health document and
// a hit-counted /api/query that always answers an empty match list.
// It lets staleness tests dial lag, generation, and liveness exactly.
type fakeBackend struct {
	mu      sync.Mutex
	doc     map[string]any
	queries atomic.Int64
	ts      *httptest.Server
}

func newFakeBackend(t *testing.T, doc map[string]any) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{doc: doc}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/health", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		defer fb.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(fb.doc)
	})
	mux.HandleFunc("GET /api/query", func(w http.ResponseWriter, r *http.Request) {
		fb.queries.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, "[]")
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) setDoc(doc map[string]any) {
	fb.mu.Lock()
	fb.doc = doc
	fb.mu.Unlock()
}

// primaryDoc/replicaDoc build the health-document fields the lag
// computation reads, in the shape the real server emits.
func primaryDoc(walSize int64, gen string) map[string]any {
	return map[string]any{"walSize": float64(walSize), "walGen": gen}
}

func replicaDoc(cut int64, gen string) map[string]any {
	return map[string]any{"replicationCut": float64(cut), "replicationGen": gen}
}

// newStalenessCluster is one shard (primary + one replica, both fake)
// behind a coordinator with replica reads at the given bound. The
// probe interval is an hour: tests drive probing explicitly, so health
// state changes exactly when a test says so.
func newStalenessCluster(t *testing.T, bound int64) (*Coordinator, *httptest.Server, *fakeBackend, *fakeBackend) {
	t.Helper()
	p := newFakeBackend(t, primaryDoc(1000, "g1"))
	r := newFakeBackend(t, replicaDoc(1000, "g1"))
	c, err := New(Config{
		Shards:         []ShardConfig{{Primary: p.ts.URL, Replicas: []string{r.ts.URL}}},
		ReplicaReads:   true,
		StalenessBound: bound,
		ProbeInterval:  time.Hour,
		Timeout:        2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)
	c.probeAll(t.Context())
	return c, front, p, r
}

// TestReplicaLagGate pins the eligibility rule on which every replica
// read rests: lag at most the bound (inclusive boundary), computed
// only when the generations match, with every unknowable case falling
// back to the primary.
func TestReplicaLagGate(t *testing.T) {
	const bound = 100
	cases := []struct {
		name     string
		primary  map[string]any
		replica  map[string]any
		down     bool
		eligible bool
	}{
		{"caught up", primaryDoc(1000, "g1"), replicaDoc(1000, "g1"), false, true},
		{"within bound", primaryDoc(1000, "g1"), replicaDoc(950, "g1"), false, true},
		{"exactly at bound", primaryDoc(1000, "g1"), replicaDoc(900, "g1"), false, true},
		{"one byte over", primaryDoc(1000, "g1"), replicaDoc(899, "g1"), false, false},
		{"far behind", primaryDoc(1000, "g1"), replicaDoc(0, "g1"), false, false},
		{"generation bumped", primaryDoc(1000, "g2"), replicaDoc(1000, "g1"), false, false},
		{"replica ahead clamps", primaryDoc(1000, "g1"), replicaDoc(1200, "g1"), false, true},
		{"primary doc missing fields", map[string]any{}, replicaDoc(1000, "g1"), false, false},
		{"replica doc missing fields", primaryDoc(1000, "g1"), map[string]any{}, false, false},
		{"replica down", primaryDoc(1000, "g1"), replicaDoc(1000, "g1"), true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh := newShard(0, ShardConfig{Primary: "http://p", Replicas: []string{"http://r"}})
			sh.primary().markUp(tc.primary)
			rep := sh.nodes[1]
			if tc.down {
				rep.markDown(fmt.Errorf("test: down"))
			} else {
				rep.markUp(tc.replica)
			}
			if got := sh.eligibleForRead(rep, bound); got != tc.eligible {
				lag, ok := sh.replicaLag(rep)
				t.Errorf("eligible = %v, want %v (lag %d known %v)", got, tc.eligible, lag, ok)
			}
			// The primary itself is never a "replica read" candidate.
			if sh.eligibleForRead(sh.primary(), bound) {
				t.Error("primary passed the replica-read gate")
			}
		})
	}
}

// TestStalenessBoundProperty is the bound's property test: across
// randomized lag/generation/liveness states, whenever the rotated read
// order puts a replica first, that replica's known lag is at most the
// bound. No replica read ever exceeds the staleness bound — the
// invariant the flag's name promises.
func TestStalenessBoundProperty(t *testing.T) {
	const bound = 256
	c, _, p, r := newStalenessCluster(t, bound)
	sh := c.topo.Load().shards[0]
	rng := rand.New(rand.NewSource(43))
	replicaFirst := 0
	for i := 0; i < 400; i++ {
		primarySize := int64(1000 + rng.Intn(4000))
		gen := "g1"
		if rng.Intn(10) == 0 {
			gen = "g2" // primary rotated; replica still on g1
		}
		cut := primarySize - int64(rng.Intn(2*bound+1))
		p.setDoc(primaryDoc(primarySize, gen))
		r.setDoc(replicaDoc(cut, "g1"))
		c.probeAll(t.Context())
		for j := 0; j < 3; j++ {
			order := c.readOrder(sh)
			if len(order) == 0 {
				t.Fatal("empty read order")
			}
			if !order[0].replica {
				continue
			}
			replicaFirst++
			lag, ok := sh.replicaLag(order[0])
			if !ok {
				t.Fatalf("iteration %d: replica served a read with unknowable lag (gen %s)", i, gen)
			}
			if lag > bound {
				t.Fatalf("iteration %d: replica read at lag %d exceeds bound %d", i, lag, bound)
			}
		}
	}
	if replicaFirst == 0 {
		t.Error("rotation never chose the replica across 1200 reads")
	}
	if got := sh.replicaReads.Load(); got != int64(replicaFirst) {
		t.Errorf("replicaReads counter %d, want %d", got, replicaFirst)
	}
}

// TestGenerationBumpFallsBackToPrimary: a caught-up replica serves
// rotated reads until the primary rotates its journal; from then on
// (until re-bootstrap) the lag is unknowable and every read goes to
// the primary.
func TestGenerationBumpFallsBackToPrimary(t *testing.T) {
	c, _, p, _ := newStalenessCluster(t, 0)
	sh := c.topo.Load().shards[0]
	sawReplica := false
	for i := 0; i < 10; i++ {
		if c.readOrder(sh)[0].replica {
			sawReplica = true
		}
	}
	if !sawReplica {
		t.Fatal("caught-up replica never rotated into the first slot")
	}

	p.setDoc(primaryDoc(1200, "g2")) // rotation: new generation
	c.probeAll(t.Context())
	before := sh.primaryReads.Load()
	for i := 0; i < 20; i++ {
		if c.readOrder(sh)[0].replica {
			t.Fatal("replica served a read across a generation bump")
		}
	}
	if got := sh.primaryReads.Load(); got != before+20 {
		t.Errorf("primaryReads advanced %d, want 20", got-before)
	}
}

// TestReplicaReadsServeTrafficAndCount drives real HTTP queries
// through the coordinator: the rotation must spread them across
// primary and replica, the status document's per-shard counters must
// match, and raising the effective lag past the bound must pin
// subsequent reads back to the primary.
func TestReplicaReadsServeTrafficAndCount(t *testing.T) {
	const bound = 100
	c, front, p, r := newStalenessCluster(t, bound)
	get := func() {
		t.Helper()
		resp, err := http.Get(front.URL + "/api/query?varba=10&varoa=10")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
	}
	const n = 20
	for i := 0; i < n; i++ {
		get()
	}
	pHits, rHits := p.queries.Load(), r.queries.Load()
	if rHits == 0 {
		t.Fatal("replica served no queries although caught up and enabled")
	}
	if pHits == 0 {
		t.Fatal("primary served no queries; rotation must include it")
	}

	var st StatusJSON
	if code, _ := getJSON(t, front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if !st.ReplicaReadsEnabled || st.StalenessBoundBytes != bound {
		t.Errorf("status advertises replicaReads=%v bound=%d, want true/%d",
			st.ReplicaReadsEnabled, st.StalenessBoundBytes, bound)
	}
	shardSt := st.Shards[0]
	if shardSt.PrimaryReads+shardSt.ReplicaReads < n {
		t.Errorf("read counters %d+%d cover fewer than the %d reads issued",
			shardSt.PrimaryReads, shardSt.ReplicaReads, n)
	}
	if shardSt.ReplicaReads == 0 {
		t.Error("status shows zero replica reads after replica-served traffic")
	}

	// Push the replica past the bound: all further first slots go to
	// the primary, and the replica counter freezes. The coordinator
	// probes hourly here, so force the new health state in.
	r.setDoc(replicaDoc(0, "g1"))
	stale := st.Shards[0].ReplicaReads
	c.probeAll(t.Context())
	for i := 0; i < n; i++ {
		get()
	}
	if code, _ := getJSON(t, front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if got := st.Shards[0].ReplicaReads; got != stale {
		t.Errorf("replica reads advanced from %d to %d with lag over the bound", stale, got)
	}
	if st.Shards[0].PrimaryReads < shardSt.PrimaryReads+int64(n) {
		t.Error("primary did not absorb the reads the lagging replica lost")
	}
	// Counters are monotone: they only ever grow.
	if st.Shards[0].PrimaryReads < shardSt.PrimaryReads || st.Shards[0].ReplicaReads < shardSt.ReplicaReads {
		t.Error("read-balance counters went backward")
	}
}
