package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"videodb/internal/chaos"
	"videodb/internal/core"
	"videodb/internal/server"
)

// chaosReshardCluster is a test cluster whose shard backends carry a
// chaos injector on the replication (migration) endpoints.
type chaosReshardCluster struct {
	tc        *testCluster
	shardDBs  []*core.Database
	injectors []*chaos.Injector
}

// newChaosReshardCluster builds k shards whose /api/replication/clip
// endpoints run behind the given faults; client-facing paths stay
// clean, so any 5xx seen by healthy traffic is a coordinator bug.
func newChaosReshardCluster(t *testing.T, k int, clips int, faults []chaos.Fault) *chaosReshardCluster {
	t.Helper()
	cc := &chaosReshardCluster{tc: &testCluster{union: newDB(t)}}
	ring := NewRing(k, 0)
	cfg := Config{ProbeInterval: 200 * time.Millisecond, Timeout: 2 * time.Second}
	all := makeClips(t, clips)
	for i := 0; i < k; i++ {
		db := newDB(t)
		inj := chaos.New(faults, uint64(100+i))
		ts := httptest.NewServer(inj.Middleware(server.New(db).Handler()))
		t.Cleanup(ts.Close)
		cc.tc.shardDBs = append(cc.tc.shardDBs, db)
		cc.tc.backends = append(cc.tc.backends, ts)
		cc.injectors = append(cc.injectors, inj)
		cfg.Shards = append(cfg.Shards, ShardConfig{Primary: ts.URL})
	}
	cc.shardDBs = cc.tc.shardDBs
	for _, clip := range all {
		if _, err := cc.tc.union.Ingest(clip); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.tc.shardDBs[ring.Owner(clip.Name)].Ingest(clip); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cc.tc.coord = coord
	cc.tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(cc.tc.front.Close)
	return cc
}

// healthyTraffic hammers the query path until stopped and records any
// 5xx — the chaos invariant is that migration faults never leak into
// client answers as server errors (partial degradation is allowed).
func healthyTraffic(t *testing.T, front string, stop <-chan struct{}, wg *sync.WaitGroup) <-chan error {
	t.Helper()
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf("/api/query?varba=%d&varoa=%d", (i*13)%100, (i*7)%100)
			resp, err := http.Get(front + q)
			if err != nil {
				select {
				case errs <- fmt.Errorf("healthy traffic: %w", err):
				default:
				}
				return
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				select {
				case errs <- fmt.Errorf("healthy traffic got %d from %s during migration", resp.StatusCode, q):
				default:
				}
				return
			}
		}
	}()
	return errs
}

// assertNoClipLost checks every union clip still exists somewhere in
// the given databases — migration faults may duplicate a clip for a
// while, but may never lose one.
func assertNoClipLost(t *testing.T, union *core.Database, dbs []*core.Database) {
	t.Helper()
	for _, rec := range union.Records() {
		found := false
		for _, db := range dbs {
			if _, ok := db.Clip(rec.Name); ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("clip %q lost during chaotic migration", rec.Name)
		}
	}
}

// TestReshardRetriesThroughFlakyReplication injects 500s on the
// replication endpoints of every shard (sources and the grow
// destination) while a 3->4 reshard runs. The engine's per-operation
// retries must either push the migration through or roll it back
// cleanly — and in both outcomes no clip is lost, the topology is
// coherent, and concurrent healthy traffic never sees a 5xx.
func TestReshardRetriesThroughFlakyReplication(t *testing.T) {
	faults := []chaos.Fault{
		{Kind: chaos.KindError, PathPrefix: "/api/replication/clip", Prob: 0.35, Code: http.StatusInternalServerError},
	}
	cc := newChaosReshardCluster(t, 3, 8, faults)
	oracle := httptest.NewServer(server.New(cc.tc.union).Handler())
	t.Cleanup(oracle.Close)

	destDB := newDB(t)
	destInj := chaos.New(faults, 999)
	destTS := httptest.NewServer(destInj.Middleware(server.New(destDB).Handler()))
	t.Cleanup(destTS.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := healthyTraffic(t, cc.tc.front.URL, stop, &wg)

	rep, err := cc.tc.coord.Reshard(context.Background(),
		ReshardRequest{Add: []ReshardShard{{Primary: destTS.URL}}})
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	allDBs := append(append([]*core.Database{}, cc.shardDBs...), destDB)
	assertNoClipLost(t, cc.tc.union, allDBs)

	var st StatusJSON
	if code, _ := getJSON(t, cc.tc.front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if err != nil {
		// Rolled back: old topology intact, destination swept clean, and
		// every clip still exactly where the old ring says.
		if !rep.RolledBack {
			t.Fatalf("failed reshard did not report rollback: %+v", rep)
		}
		if len(st.Shards) != 3 {
			t.Fatalf("failed reshard changed membership to %d shards", len(st.Shards))
		}
		if n := len(destDB.Clips()); n != 0 {
			t.Errorf("rollback left %d clips on the abandoned destination", n)
		}
		assertPlacement(t, cc.tc.union, cc.shardDBs)
	} else {
		if rep.Retries == 0 {
			t.Logf("note: reshard succeeded without retries despite 35%% fault rate")
		}
		if len(st.Shards) != 4 {
			t.Fatalf("successful reshard reports %d shards, want 4", len(st.Shards))
		}
		assertPlacement(t, cc.tc.union, allDBs)
		assertEquivalence(t, cc.tc.front.URL, oracle.URL, cc.tc.union, "after chaotic reshard")
	}
}

// TestReshardSourceDiesMidMigration slows every source's replication
// export, then kills one source's HTTP server while the copy phase is
// in flight. The reshard must fail and roll back — old ring kept, the
// destination swept — with zero clips lost (the dead server's database
// still holds its partition; only its HTTP front died) and zero 5xx on
// concurrent healthy traffic.
func TestReshardSourceDiesMidMigration(t *testing.T) {
	faults := []chaos.Fault{
		{Kind: chaos.KindLatency, PathPrefix: "/api/replication/clip", Prob: 1, Latency: 120 * time.Millisecond},
	}
	cc := newChaosReshardCluster(t, 3, 10, faults)

	destDB, destTS := addBackend(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := healthyTraffic(t, cc.tc.front.URL, stop, &wg)

	done := make(chan struct{})
	var rep *ReshardReport
	var rerr error
	go func() {
		defer close(done)
		rep, rerr = cc.tc.coord.Reshard(context.Background(),
			ReshardRequest{Add: []ReshardShard{{Primary: destTS.URL}}})
	}()

	// Let the copy phase start (each per-clip export eats >= 120ms),
	// then kill a source mid-stream.
	time.Sleep(200 * time.Millisecond)
	cc.tc.backends[1].Close()
	<-done
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	if rerr == nil {
		// The kill can land after the last copy from shard 1 — but the
		// cutover relist contacts every source, so a completed reshard
		// means shard 1 died after cutover. Membership must then be 4.
		var st StatusJSON
		getJSON(t, cc.tc.front.URL+"/api/cluster/status", &st)
		if len(st.Shards) != 4 {
			t.Fatalf("reshard claims success but status has %d shards", len(st.Shards))
		}
	} else {
		if !rep.RolledBack {
			t.Fatalf("reshard failed without rollback: %+v (err %v)", rep, rerr)
		}
		var st StatusJSON
		getJSON(t, cc.tc.front.URL+"/api/cluster/status", &st)
		if len(st.Shards) != 3 {
			t.Fatalf("rolled-back reshard changed membership to %d shards", len(st.Shards))
		}
		if n := len(destDB.Clips()); n != 0 {
			t.Errorf("rollback left %d clips on the destination", n)
		}
	}
	// Either way: the union corpus survives across the in-process
	// databases (the killed backend's DB included — only its HTTP
	// listener died).
	assertNoClipLost(t, cc.tc.union, append(append([]*core.Database{}, cc.shardDBs...), destDB))
}

// TestReshardDestinationDiesMidMigration kills the grow destination
// while copies stream into it: the reshard must fail, keep the old
// 3-shard topology, and leave the source partitions untouched.
func TestReshardDestinationDiesMidMigration(t *testing.T) {
	cc := newChaosReshardCluster(t, 3, 10, nil)

	destDB := newDB(t)
	destInj := chaos.New([]chaos.Fault{
		{Kind: chaos.KindLatency, PathPrefix: "/api/replication/clip", Prob: 1, Latency: 120 * time.Millisecond},
	}, 7)
	destTS := httptest.NewServer(destInj.Middleware(server.New(destDB).Handler()))
	t.Cleanup(destTS.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := healthyTraffic(t, cc.tc.front.URL, stop, &wg)

	done := make(chan struct{})
	var rep *ReshardReport
	var rerr error
	go func() {
		defer close(done)
		rep, rerr = cc.tc.coord.Reshard(context.Background(),
			ReshardRequest{Add: []ReshardShard{{Primary: destTS.URL}}})
	}()
	time.Sleep(200 * time.Millisecond)
	destTS.Close()
	<-done
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	if rerr == nil {
		t.Fatalf("reshard succeeded although the destination died mid-copy: %+v", rep)
	}
	if !rep.RolledBack {
		t.Fatalf("reshard failed without rollback: %+v", rep)
	}
	var st StatusJSON
	if code, _ := getJSON(t, cc.tc.front.URL+"/api/cluster/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("membership changed to %d shards after a failed grow", len(st.Shards))
	}
	// Sources are untouched: every clip still lives exactly on its
	// old-ring owner, so client answers are exactly what they were.
	assertPlacement(t, cc.tc.union, cc.shardDBs)
}
