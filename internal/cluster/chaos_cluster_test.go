package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"videodb/internal/chaos"
	"videodb/internal/server"
)

// TestPartialUnderInjectedLatency: a shard that is alive but
// chaos-slowed past the per-node timeout must degrade the answer to
// partial:true, not hang the query or fail it outright. This is the
// latency counterpart of the shard-death partial tests.
func TestPartialUnderInjectedLatency(t *testing.T) {
	clips := makeClips(t, 4)
	ring := NewRing(2, 0)
	cfg := Config{
		ProbeInterval: 200 * time.Millisecond,
		Timeout:       150 * time.Millisecond,
		Retries:       -1, // no per-node retries: the test times out one attempt per node
	}
	for i := 0; i < 2; i++ {
		db := newDB(t)
		for _, clip := range clips {
			if ring.Owner(clip.Name) == i {
				if _, err := db.Ingest(clip); err != nil {
					t.Fatal(err)
				}
			}
		}
		h := server.New(db).Handler()
		if i == 0 {
			// Shard 0 answers queries far slower than the fan-out timeout;
			// health stays fast so the prober keeps believing in it.
			inj := chaos.New([]chaos.Fault{
				{Kind: chaos.KindLatency, PathPrefix: "/api/query", Prob: 1, Latency: 2 * time.Second},
			}, 1)
			h = inj.Middleware(h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		cfg.Shards = append(cfg.Shards, ShardConfig{Primary: ts.URL})
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	var resp QueryResponseJSON
	start := time.Now()
	code, hdr := getJSON(t, front.URL+"/api/query?varba=25&varoa=4", &resp)
	if code != http.StatusOK {
		t.Fatalf("query against a slow shard answered %d, want 200 partial", code)
	}
	if !resp.Partial {
		t.Error("answer not marked partial although shard 0 never answered in time")
	}
	if hdr.Get(HeaderPartial) != "true" {
		t.Errorf("%s = %q, want true", HeaderPartial, hdr.Get(HeaderPartial))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("degraded answer took %v; the slow shard stalled the gather", elapsed)
	}
}

// TestHedgeWinsBackSlowShard: with a healthy replica and hedging on,
// the same chaos-slowed primary must NOT cost the answer its shard —
// the hedged probe reaches the replica and wins, partial stays false.
func TestHedgeWinsBackSlowShard(t *testing.T) {
	clips := makeClips(t, 4)
	db := newDB(t)
	for _, clip := range clips {
		if _, err := db.Ingest(clip); err != nil {
			t.Fatal(err)
		}
	}
	// Primary and replica serve the same database; only the primary is
	// chaos-slowed on the query path.
	inj := chaos.New([]chaos.Fault{
		{Kind: chaos.KindLatency, PathPrefix: "/api/query", Prob: 1, Latency: time.Second},
	}, 1)
	primary := httptest.NewServer(inj.Middleware(server.New(db).Handler()))
	t.Cleanup(primary.Close)
	replica := httptest.NewServer(server.New(db).Handler())
	t.Cleanup(replica.Close)

	coord, err := New(Config{
		Shards:        []ShardConfig{{Primary: primary.URL, Replicas: []string{replica.URL}}},
		ProbeInterval: 200 * time.Millisecond,
		Timeout:       5 * time.Second,
		Hedge:         true,
		HedgeDelay:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	var resp QueryResponseJSON
	start := time.Now()
	code, _ := getJSON(t, front.URL+"/api/query?varba=25&varoa=4", &resp)
	if code != http.StatusOK {
		t.Fatalf("hedged query answered %d, want 200", code)
	}
	if resp.Partial {
		t.Error("hedging lost the shard: partial=true with a healthy replica")
	}
	if elapsed := time.Since(start); elapsed > 800*time.Millisecond {
		t.Errorf("hedged answer took %v; it waited out the slow primary instead of hedging", elapsed)
	}
	if wins := coord.metrics.get("hedge_wins"); wins < 1 {
		t.Errorf("hedge_wins = %d, want >= 1", wins)
	}
}

// TestRetryBudgetCapsRetryStorm: a dead shard under sustained load must
// not multiply attempts without bound — retries stay within
// ratio × fetches + burst and the budget visibly suppresses demand.
func TestRetryBudgetCapsRetryStorm(t *testing.T) {
	healthy := httptest.NewServer(server.New(newDB(t)).Handler())
	t.Cleanup(healthy.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	const ratio = 0.2
	coord, err := New(Config{
		Shards:        []ShardConfig{{Primary: healthy.URL}, {Primary: deadURL}},
		ProbeInterval: time.Hour, // only the startup probe; the data path drives health
		Timeout:       time.Second,
		RetryBudget:   ratio,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	const queries = 80
	for i := 0; i < queries; i++ {
		var resp QueryResponseJSON
		code, _ := getJSON(t, front.URL+"/api/query?varba=25&varoa=4", &resp)
		if code != http.StatusOK {
			t.Fatalf("query %d answered %d with one healthy shard, want 200 partial", i, code)
		}
		if !resp.Partial {
			t.Fatalf("query %d not partial although shard 1 is dead", i)
		}
	}

	fetches := coord.metrics.get("fetches")
	retries := coord.metrics.get("retries")
	suppressed := coord.metrics.get("retries_suppressed")
	if suppressed == 0 {
		t.Errorf("budget never suppressed a retry over %d queries against a dead shard", queries)
	}
	// Every extra attempt was paid for: ratio per primary fetch plus the
	// initial burst is the hard ceiling.
	if limit := int64(ratio*float64(fetches)) + budgetBurst; retries > limit {
		t.Errorf("retries = %d over %d fetches, budget allows at most %d", retries, fetches, limit)
	}
}

// TestBackpressurePropagates: a shard answering 429 is shedding load,
// not failing — the coordinator must pass the 429 and its Retry-After
// through untouched, burn no retries on it, and not mark the shard
// down.
func TestBackpressurePropagates(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/health" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"request shed: rate_limit","reason":"rate_limit"}`)
	}))
	t.Cleanup(shedding.Close)

	coord, err := New(Config{
		Shards:        []ShardConfig{{Primary: shedding.URL}},
		ProbeInterval: time.Hour,
		Timeout:       time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	code, hdr := getJSON(t, front.URL+"/api/query?varba=25&varoa=4", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed shard propagated as %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want the shard's own 7", ra)
	}
	if got := coord.metrics.get("backpressure"); got < 1 {
		t.Errorf("backpressure counter = %d, want >= 1", got)
	}
	if got := coord.metrics.get("retries"); got != 0 {
		t.Errorf("retries = %d on a 429, want 0 (backpressure is never retried)", got)
	}
	if got := coord.metrics.get("shard_failures"); got != 0 {
		t.Errorf("shard_failures = %d, want 0 (shedding is not failing)", got)
	}
	if !coord.topo.Load().shards[0].primary().isUp() {
		t.Error("429 marked the shard down; shedding nodes are alive")
	}
}
