// Package ecrsbd implements the edge-change-ratio shot boundary
// detection baseline of Zabih, Miller and Mai (the paper's reference
// [7]). Lienhart's survey (reference [2]) notes this family needs at
// least six threshold values to be chosen properly; the Config exposes
// them all.
//
// Per frame, a binary edge map is computed with a Sobel operator on the
// luminance channel. For each consecutive pair, entering edges (edge
// pixels of the new frame not near an old edge) and exiting edges (edge
// pixels of the old frame not near a new edge) are counted after
// dilating the opposing map; the edge change ratio is the larger of the
// two fractions. Cuts produce an ECR spike above the ratio threshold.
package ecrsbd

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"videodb/internal/video"
)

// Config holds the six tunable parameters of the detector.
type Config struct {
	// EdgeThreshold is the minimum Sobel gradient magnitude for a pixel
	// to count as an edge.
	EdgeThreshold int
	// DilateRadius is the Chebyshev radius used when testing whether an
	// edge pixel has a counterpart in the other frame.
	DilateRadius int
	// ECRThreshold declares a boundary when the edge change ratio
	// exceeds it.
	ECRThreshold float64
	// MinEdgePixels skips pairs whose frames have fewer edge pixels
	// (ECR is unstable on near-empty edge maps).
	MinEdgePixels int
	// SpikeFactor requires the ECR at a boundary to exceed the mean of
	// the neighbouring window by this factor (spike detection).
	SpikeFactor float64
	// SpikeWindow is the half-width of the neighbourhood used for the
	// spike test, in frames.
	SpikeWindow int
}

// DefaultConfig returns parameters calibrated on the synthetic corpus.
func DefaultConfig() Config {
	return Config{
		EdgeThreshold: 96,
		DilateRadius:  2,
		ECRThreshold:  0.5,
		MinEdgePixels: 40,
		SpikeFactor:   1.6,
		SpikeWindow:   3,
	}
}

// Validate reports the first invalid parameter, if any.
func (c Config) Validate() error {
	if c.EdgeThreshold <= 0 || c.EdgeThreshold > 1020 {
		return fmt.Errorf("ecrsbd: EdgeThreshold %d outside (0,1020]", c.EdgeThreshold)
	}
	if c.DilateRadius < 0 || c.DilateRadius > 16 {
		return fmt.Errorf("ecrsbd: DilateRadius %d outside [0,16]", c.DilateRadius)
	}
	if c.ECRThreshold <= 0 || c.ECRThreshold > 1 {
		return fmt.Errorf("ecrsbd: ECRThreshold %v outside (0,1]", c.ECRThreshold)
	}
	if c.MinEdgePixels < 0 {
		return fmt.Errorf("ecrsbd: MinEdgePixels %d negative", c.MinEdgePixels)
	}
	if c.SpikeFactor < 1 {
		return fmt.Errorf("ecrsbd: SpikeFactor %v below 1", c.SpikeFactor)
	}
	if c.SpikeWindow < 0 {
		return fmt.Errorf("ecrsbd: SpikeWindow %d negative", c.SpikeWindow)
	}
	return nil
}

// Detector is the ECR baseline. It implements sbd.Detector.
type Detector struct {
	cfg Config
}

// New returns a detector with the given parameters.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Name implements sbd.Detector.
func (d *Detector) Name() string { return "edge-change-ratio" }

// EdgeMap computes a binary edge map of f: true where the Sobel gradient
// magnitude (|gx| + |gy| on luminance) exceeds threshold.
func EdgeMap(f *video.Frame, threshold int) []bool {
	luma := make([]int, len(f.Pix))
	for i, p := range f.Pix {
		luma[i] = p.Luma()
	}
	at := func(x, y int) int {
		if x < 0 {
			x = 0
		} else if x >= f.W {
			x = f.W - 1
		}
		if y < 0 {
			y = 0
		} else if y >= f.H {
			y = f.H - 1
		}
		return luma[y*f.W+x]
	}
	edges := make([]bool, len(f.Pix))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			gx := -at(x-1, y-1) - 2*at(x-1, y) - at(x-1, y+1) +
				at(x+1, y-1) + 2*at(x+1, y) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			if gx+gy > threshold {
				edges[y*f.W+x] = true
			}
		}
	}
	return edges
}

// Dilate expands a binary map by the given Chebyshev radius.
func Dilate(edges []bool, w, h, radius int) []bool {
	if radius == 0 {
		out := make([]bool, len(edges))
		copy(out, edges)
		return out
	}
	out := make([]bool, len(edges))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !edges[y*w+x] {
				continue
			}
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy < 0 || yy >= h {
					continue
				}
				for dx := -radius; dx <= radius; dx++ {
					xx := x + dx
					if xx < 0 || xx >= w {
						continue
					}
					out[yy*w+xx] = true
				}
			}
		}
	}
	return out
}

// ECR computes the edge change ratio between two frames' edge maps:
// max(fraction of new edges entering, fraction of old edges exiting).
// It also returns the edge pixel counts of both maps.
func ECR(prev, cur []bool, w, h, radius int) (ecr float64, prevCount, curCount int) {
	prevDil := Dilate(prev, w, h, radius)
	curDil := Dilate(cur, w, h, radius)
	var in, out int
	for i := range cur {
		if cur[i] {
			curCount++
			if !prevDil[i] {
				in++
			}
		}
		if prev[i] {
			prevCount++
			if !curDil[i] {
				out++
			}
		}
	}
	var rIn, rOut float64
	if curCount > 0 {
		rIn = float64(in) / float64(curCount)
	}
	if prevCount > 0 {
		rOut = float64(out) / float64(prevCount)
	}
	if rIn > rOut {
		return rIn, prevCount, curCount
	}
	return rOut, prevCount, curCount
}

// Reduce is the detector's pure per-frame reduction step: the binary
// edge map of one frame under the configured threshold. It depends on
// no other frame, so callers may fan it out across a worker pool and
// keep only the pairwise Compare sequential.
func (d *Detector) Reduce(f *video.Frame) []bool {
	return EdgeMap(f, d.cfg.EdgeThreshold)
}

// Compare is the pairwise step over two precomputed edge maps: the edge
// change ratio, forced to 0 when either map has too few edge pixels for
// a stable ratio.
func (d *Detector) Compare(prev, cur []bool, w, h int) float64 {
	ecr, pc, cc := ECR(prev, cur, w, h, d.cfg.DilateRadius)
	if pc < d.cfg.MinEdgePixels || cc < d.cfg.MinEdgePixels {
		return 0
	}
	return ecr
}

// Series computes the per-pair ECR values for a clip.
func (d *Detector) Series(c *video.Clip) []float64 {
	return d.SeriesParallel(c, 1)
}

// SeriesParallel is Series with the per-frame Reduce step spread over
// the given number of workers (0 = GOMAXPROCS). Edge maps are
// independent per frame, so the result is identical to Series.
func (d *Detector) SeriesParallel(c *video.Clip, workers int) []float64 {
	maps := make([][]bool, len(c.Frames))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Frames) {
		workers = len(c.Frames)
	}
	if workers <= 1 {
		for i, f := range c.Frames {
			maps[i] = d.Reduce(f)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(c.Frames) {
						return
					}
					maps[i] = d.Reduce(c.Frames[i])
				}
			}()
		}
		wg.Wait()
	}
	w, h := c.Frames[0].W, c.Frames[0].H
	series := make([]float64, len(c.Frames)-1)
	for i := 1; i < len(maps); i++ {
		series[i-1] = d.Compare(maps[i-1], maps[i], w, h)
	}
	return series
}

// Detect implements sbd.Detector: a boundary is declared at frame i when
// the ECR between frames i−1 and i exceeds ECRThreshold and forms a
// local spike relative to its neighbourhood.
func (d *Detector) Detect(c *video.Clip) ([]int, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(c.Frames) < 2 {
		return nil, nil
	}
	series := d.Series(c)
	var bounds []int
	for i, ecr := range series {
		if ecr <= d.cfg.ECRThreshold {
			continue
		}
		if d.cfg.SpikeWindow > 0 && !d.isSpike(series, i) {
			continue
		}
		bounds = append(bounds, i+1)
	}
	return bounds, nil
}

// isSpike reports whether series[i] exceeds SpikeFactor times the mean
// of its neighbourhood (excluding itself).
func (d *Detector) isSpike(series []float64, i int) bool {
	lo, hi := i-d.cfg.SpikeWindow, i+d.cfg.SpikeWindow
	if lo < 0 {
		lo = 0
	}
	if hi >= len(series) {
		hi = len(series) - 1
	}
	var sum float64
	n := 0
	for j := lo; j <= hi; j++ {
		if j == i {
			continue
		}
		sum += series[j]
		n++
	}
	if n == 0 {
		return true
	}
	mean := sum / float64(n)
	return series[i] > d.cfg.SpikeFactor*mean
}
