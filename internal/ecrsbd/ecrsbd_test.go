package ecrsbd

import (
	"testing"

	"videodb/internal/video"
	"videodb/internal/vtest"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.EdgeThreshold = 0 },
		func(c *Config) { c.DilateRadius = -1 },
		func(c *Config) { c.ECRThreshold = 0 },
		func(c *Config) { c.ECRThreshold = 1.5 },
		func(c *Config) { c.MinEdgePixels = -5 },
		func(c *Config) { c.SpikeFactor = 0.5 },
		func(c *Config) { c.SpikeWindow = -1 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestEdgeMapFindsStep(t *testing.T) {
	f := video.NewFrame(20, 20)
	for y := 0; y < 20; y++ {
		for x := 10; x < 20; x++ {
			f.Set(x, y, video.RGB(255, 255, 255))
		}
	}
	edges := EdgeMap(f, 96)
	foundAtStep, foundElsewhere := false, false
	for y := 2; y < 18; y++ {
		for x := 2; x < 18; x++ {
			if edges[y*20+x] {
				if x >= 8 && x <= 11 {
					foundAtStep = true
				} else {
					foundElsewhere = true
				}
			}
		}
	}
	if !foundAtStep {
		t.Error("vertical step edge not detected")
	}
	if foundElsewhere {
		t.Error("edges detected in flat regions")
	}
}

func TestEdgeMapFlatFrame(t *testing.T) {
	f := video.NewFrame(20, 20)
	f.Fill(video.RGB(128, 128, 128))
	for i, e := range EdgeMap(f, 96) {
		if e {
			t.Fatalf("edge at %d in flat frame", i)
		}
	}
}

func TestDilate(t *testing.T) {
	edges := make([]bool, 25)
	edges[12] = true // centre of 5x5
	d := Dilate(edges, 5, 5, 1)
	count := 0
	for _, v := range d {
		if v {
			count++
		}
	}
	if count != 9 {
		t.Errorf("dilated count = %d, want 9", count)
	}
	d0 := Dilate(edges, 5, 5, 0)
	for i := range edges {
		if d0[i] != edges[i] {
			t.Fatal("radius-0 dilation changed the map")
		}
	}
	// Corner handling.
	corner := make([]bool, 25)
	corner[0] = true
	dc := Dilate(corner, 5, 5, 1)
	count = 0
	for _, v := range dc {
		if v {
			count++
		}
	}
	if count != 4 {
		t.Errorf("corner dilation count = %d, want 4", count)
	}
}

func TestECRIdenticalFrames(t *testing.T) {
	f := vtest.TexturedCanvas(80, 60, 1)
	e := EdgeMap(f, 96)
	ecr, _, _ := ECR(e, e, 80, 60, 2)
	if ecr != 0 {
		t.Errorf("ECR of identical maps = %v, want 0", ecr)
	}
}

func TestECRDisjointEdges(t *testing.T) {
	// Two edge maps with edges in opposite corners: ECR = 1.
	a := make([]bool, 400)
	b := make([]bool, 400)
	a[0] = true
	b[399] = true
	ecr, pc, cc := ECR(a, b, 20, 20, 1)
	if ecr != 1 {
		t.Errorf("ECR = %v, want 1", ecr)
	}
	if pc != 1 || cc != 1 {
		t.Errorf("counts = %d,%d, want 1,1", pc, cc)
	}
}

func TestDetectHardCut(t *testing.T) {
	clip := vtest.TwoShotClip("cut", 6, 7, 8, 16)
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := d.Detect(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 1 || bounds[0] != 8 {
		t.Errorf("bounds = %v, want [8]", bounds)
	}
}

func TestDetectStaticNoBoundary(t *testing.T) {
	canvas := vtest.TexturedCanvas(400, 120, 8)
	clip := video.NewClip("static", 3)
	clip.Append(vtest.PanClip(canvas, 50, 0, 10, 160, 120)...)
	d, _ := New(DefaultConfig())
	bounds, err := d.Detect(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 0 {
		t.Errorf("static clip produced bounds %v", bounds)
	}
}

func TestSeriesLength(t *testing.T) {
	clip := vtest.TwoShotClip("cut", 9, 10, 4, 9)
	d, _ := New(DefaultConfig())
	s := d.Series(clip)
	if len(s) != 8 {
		t.Errorf("series length = %d, want 8", len(s))
	}
}

// TestSeriesParallelMatchesSerial pins the two-phase split: per-frame
// edge-map reduction is pure, so fanning it out across workers must
// reproduce the serial ECR series exactly.
func TestSeriesParallelMatchesSerial(t *testing.T) {
	clip := vtest.TwoShotClip("cut", 33, 40, 12, 28)
	d, _ := New(DefaultConfig())
	serial := d.Series(clip)
	for _, workers := range []int{0, 2, 8} {
		par := d.SeriesParallel(clip, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: series length %d, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: series[%d] = %v, want %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestDetectRejectsInvalidClip(t *testing.T) {
	d, _ := New(DefaultConfig())
	if _, err := d.Detect(video.NewClip("empty", 3)); err == nil {
		t.Error("empty clip accepted")
	}
}

func TestName(t *testing.T) {
	d, _ := New(DefaultConfig())
	if d.Name() != "edge-change-ratio" {
		t.Errorf("Name = %q", d.Name())
	}
}
