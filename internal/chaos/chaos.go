// Package chaos implements fault-injection middleware for torturing
// real deployments: added latency, injected errors, and throttled
// (slow-body) responses, each scoped to a path prefix and fired with a
// configured probability from a seeded deterministic random stream.
//
// Faults are described by a small spec grammar (one spec per fault,
// repeatable on the vdbserver -chaos flag):
//
//	kind:pathprefix:probability:param
//
//	latency:/api/query:0.5:200ms     half of /api/query* sleeps 200ms
//	error:/api/:0.05:500             5% of API requests answer 500
//	slow:/api/clips:1.0:4096         clip responses trickle at 4 KiB/s
//
// The same seed and request order reproduce the same fault sequence,
// so a chaos run that found a bug can be replayed. Injected faults are
// counted per kind (Stats) and exported by vdbserver as
// videodb_chaos_injected_total metrics. See docs/ROBUSTNESS.md for the
// grammar and the cluster chaos-smoke scenario built on this package.
package chaos

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"videodb/internal/rng"
)

// Fault kinds.
const (
	KindLatency = "latency" // sleep Latency before handling
	KindError   = "error"   // answer Code immediately, JSON body
	KindSlow    = "slow"    // throttle the response body to BytesPerSec
)

// Fault is one injection rule.
type Fault struct {
	// Kind is one of KindLatency, KindError, KindSlow.
	Kind string
	// PathPrefix scopes the fault: only requests whose URL path has
	// this prefix are candidates.
	PathPrefix string
	// Prob is the injection probability in [0, 1].
	Prob float64
	// Latency is the injected delay (KindLatency).
	Latency time.Duration
	// Code is the injected status code (KindError).
	Code int
	// BytesPerSec is the response bandwidth cap (KindSlow).
	BytesPerSec int
}

// ParseFault parses one kind:pathprefix:probability:param spec.
func ParseFault(spec string) (Fault, error) {
	parts := strings.SplitN(spec, ":", 4)
	if len(parts) != 4 {
		return Fault{}, fmt.Errorf("chaos: spec %q: want kind:pathprefix:probability:param", spec)
	}
	f := Fault{Kind: parts[0], PathPrefix: parts[1]}
	if f.PathPrefix == "" || !strings.HasPrefix(f.PathPrefix, "/") {
		return Fault{}, fmt.Errorf("chaos: spec %q: path prefix must start with /", spec)
	}
	prob, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || prob < 0 || prob > 1 {
		return Fault{}, fmt.Errorf("chaos: spec %q: probability must be in [0,1]", spec)
	}
	f.Prob = prob
	param := parts[3]
	switch f.Kind {
	case KindLatency:
		d, err := time.ParseDuration(param)
		if err != nil || d <= 0 {
			return Fault{}, fmt.Errorf("chaos: spec %q: latency param must be a positive duration", spec)
		}
		f.Latency = d
	case KindError:
		code, err := strconv.Atoi(param)
		if err != nil || code < 400 || code > 599 {
			return Fault{}, fmt.Errorf("chaos: spec %q: error param must be a 4xx/5xx status code", spec)
		}
		f.Code = code
	case KindSlow:
		bps, err := strconv.Atoi(param)
		if err != nil || bps <= 0 {
			return Fault{}, fmt.Errorf("chaos: spec %q: slow param must be positive bytes/sec", spec)
		}
		f.BytesPerSec = bps
	default:
		return Fault{}, fmt.Errorf("chaos: spec %q: unknown kind %q (want latency|error|slow)", spec, f.Kind)
	}
	return f, nil
}

// ParseFaults parses a list of specs.
func ParseFaults(specs []string) ([]Fault, error) {
	out := make([]Fault, 0, len(specs))
	for _, s := range specs {
		f, err := ParseFault(s)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Injector evaluates faults against requests. Create with New.
type Injector struct {
	faults []Fault

	mu       sync.Mutex
	rng      *rng.RNG
	injected map[string]int64
}

// New builds an injector over faults with a seeded random stream.
func New(faults []Fault, seed uint64) *Injector {
	return &Injector{
		faults:   faults,
		rng:      rng.New(seed),
		injected: make(map[string]int64, len(faults)),
	}
}

// roll draws one uniform float and, when it lands under p, counts an
// injection of kind. One draw happens per candidate fault per request
// regardless of outcome, so the decision stream depends only on the
// seed and the request order.
func (inj *Injector) roll(kind string, p float64) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.rng.Float64() >= p {
		return false
	}
	inj.injected[kind]++
	return true
}

// Stats returns the injected-fault counts by kind.
func (inj *Injector) Stats() map[string]int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]int64, len(inj.injected))
	for k, v := range inj.injected {
		out[k] = v
	}
	return out
}

// Middleware wraps next with the injector's faults. Multiple faults
// can fire on one request (a response can be both delayed and
// throttled); an injected error short-circuits the handler.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	if len(inj.faults) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var slowBPS int
		for _, f := range inj.faults {
			if !strings.HasPrefix(r.URL.Path, f.PathPrefix) || !inj.roll(f.Kind, f.Prob) {
				continue
			}
			switch f.Kind {
			case KindLatency:
				select {
				case <-time.After(f.Latency):
				case <-r.Context().Done():
					// The caller gave up during the injected delay; there
					// is nobody left to answer.
					return
				}
			case KindError:
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(f.Code)
				fmt.Fprintf(w, "{\"error\":\"chaos: injected status %d\"}\n", f.Code)
				return
			case KindSlow:
				if slowBPS == 0 || f.BytesPerSec < slowBPS {
					slowBPS = f.BytesPerSec
				}
			}
		}
		if slowBPS > 0 {
			sw := &slowWriter{ResponseWriter: w, bps: slowBPS, ctx: r.Context()}
			next.ServeHTTP(sw, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// slowWriter throttles response writes to bps bytes/second by slicing
// writes into small chunks with proportional sleeps.
type slowWriter struct {
	http.ResponseWriter
	bps int
	ctx context.Context
}

func (sw *slowWriter) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		chunk := sw.bps / 10 // ~100ms of budget per chunk
		if chunk < 1 {
			chunk = 1
		}
		if chunk > len(p) {
			chunk = len(p)
		}
		n, err := sw.ResponseWriter.Write(p[:chunk])
		written += n
		if err != nil {
			return written, err
		}
		p = p[chunk:]
		if len(p) == 0 {
			break
		}
		delay := time.Duration(float64(chunk) / float64(sw.bps) * float64(time.Second))
		select {
		case <-time.After(delay):
		case <-sw.ctx.Done():
			return written, sw.ctx.Err()
		}
	}
	return written, nil
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sw *slowWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }
