package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFault(t *testing.T) {
	good := []struct {
		spec string
		want Fault
	}{
		{"latency:/api/query:0.5:200ms",
			Fault{Kind: KindLatency, PathPrefix: "/api/query", Prob: 0.5, Latency: 200 * time.Millisecond}},
		{"error:/api/:0.05:500",
			Fault{Kind: KindError, PathPrefix: "/api/", Prob: 0.05, Code: 500}},
		{"slow:/api/clips:1:4096",
			Fault{Kind: KindSlow, PathPrefix: "/api/clips", Prob: 1, BytesPerSec: 4096}},
	}
	for _, tc := range good {
		got, err := ParseFault(tc.spec)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseFault(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	bad := []string{
		"",
		"latency:/api:0.5",       // missing param
		"latency:api:0.5:10ms",   // prefix without /
		"latency:/api:1.5:10ms",  // probability > 1
		"latency:/api:0.5:-10ms", // negative duration
		"error:/api:0.5:200",     // not an error code
		"error:/api:0.5:cat",     // non-numeric code
		"slow:/api:0.5:0",        // zero bandwidth
		"explode:/api:0.5:10ms",  // unknown kind
		"latency:/api:zero:10ms", // non-numeric probability
	}
	for _, spec := range bad {
		if _, err := ParseFault(spec); err == nil {
			t.Fatalf("ParseFault(%q) accepted an invalid spec", spec)
		}
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, strings.Repeat("x", 1000))
	})
}

func TestErrorInjectionScopedAndCounted(t *testing.T) {
	inj := New([]Fault{{Kind: KindError, PathPrefix: "/api/query", Prob: 1, Code: 503}}, 1)
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/query?varba=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("in-scope request: status %d, want injected 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("injected body %q does not identify itself as chaos", body)
	}

	// Out of scope: untouched.
	resp2, err := http.Get(ts.URL + "/api/clips")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("out-of-scope request: status %d, want 200", resp2.StatusCode)
	}

	if got := inj.Stats()[KindError]; got != 1 {
		t.Fatalf("injected error count = %d, want 1", got)
	}
}

func TestLatencyInjectionDelays(t *testing.T) {
	inj := New([]Fault{{Kind: KindLatency, PathPrefix: "/", Prob: 1, Latency: 60 * time.Millisecond}}, 1)
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("request finished in %v, injected latency is 60ms", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("latency fault changed the status to %d", resp.StatusCode)
	}
}

func TestSlowInjectionThrottles(t *testing.T) {
	// 1000 bytes at 2000 B/s should take roughly half a second.
	inj := New([]Fault{{Kind: KindSlow, PathPrefix: "/", Prob: 1, BytesPerSec: 2000}}, 1)
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 1000 {
		t.Fatalf("throttled body lost bytes: got %d, want 1000", len(body))
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("1000 bytes at 2000 B/s arrived in %v; throttle is not throttling", elapsed)
	}
}

func TestDeterministicStream(t *testing.T) {
	decisions := func(seed uint64) []bool {
		inj := New([]Fault{{Kind: KindError, PathPrefix: "/", Prob: 0.5, Code: 500}}, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.roll(KindError, 0.5)
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := decisions(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-decision stream")
	}
}

// comparableHandler is a pointer receiver so the interface value is
// comparable (func values are not).
type comparableHandler struct{}

func (*comparableHandler) ServeHTTP(http.ResponseWriter, *http.Request) {}

func TestZeroFaultsPassthrough(t *testing.T) {
	inj := New(nil, 1)
	h := &comparableHandler{}
	if got := inj.Middleware(h); got != http.Handler(h) {
		// Middleware must return next unchanged so the fault-free path
		// costs nothing.
		t.Fatal("empty injector wrapped the handler anyway")
	}
}
