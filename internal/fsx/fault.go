package fsx

import (
	"errors"
	"io"
)

// ErrInjected is the error every injected fault reports; tests match it
// with errors.Is to tell a deliberate failure from a real one.
var ErrInjected = errors.New("fsx: injected fault")

// SyncFile is the slice of *os.File the durability layer writes
// through: sequential writes, fsync, truncate, close. FaultFile wraps
// any SyncFile, so tests can slide it under the journal writer or an
// atomic-write payload without touching production code.
type SyncFile interface {
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FaultFile wraps a SyncFile and injects failures on cue: hard write
// errors after a byte budget, silent short writes (the io.Writer
// contract violation a buggy filesystem produces), and fsync/close
// failures. The zero thresholds mean "never" (disabled is <0 for the
// byte cues, false for the flags).
type FaultFile struct {
	// F is the wrapped file.
	F SyncFile
	// FailWriteAfter makes writes fail with ErrInjected once this many
	// bytes have been written; the write that crosses the budget is
	// partially applied first, like a real device running out of space
	// mid-buffer. <0 disables.
	FailWriteAfter int64
	// ShortWriteAt makes the write that crosses this byte count report
	// fewer bytes than asked with a nil error — the contract violation
	// robust callers must turn into io.ErrShortWrite. <0 disables.
	ShortWriteAt int64
	// FailSync makes Sync fail with ErrInjected.
	FailSync bool
	// FailNextSyncs makes only the next N Sync calls fail with
	// ErrInjected, each failure decrementing the counter — a transient
	// fsync error, unlike the permanent FailSync.
	FailNextSyncs int
	// FailClose makes Close fail with ErrInjected (after closing the
	// underlying file, so tests do not leak descriptors).
	FailClose bool
	// Written counts bytes actually handed to the underlying file.
	Written int64
	// Syncs counts successful Sync calls.
	Syncs int64
}

// NewFaultFile wraps f with every fault disabled.
func NewFaultFile(f SyncFile) *FaultFile {
	return &FaultFile{F: f, FailWriteAfter: -1, ShortWriteAt: -1}
}

func (ff *FaultFile) Write(p []byte) (int, error) {
	if ff.FailWriteAfter >= 0 {
		if ff.Written >= ff.FailWriteAfter {
			return 0, ErrInjected
		}
		if budget := ff.FailWriteAfter - ff.Written; int64(len(p)) > budget {
			n, err := ff.F.Write(p[:budget])
			ff.Written += int64(n)
			if err != nil {
				return n, err
			}
			return n, ErrInjected
		}
	}
	if ff.ShortWriteAt >= 0 && ff.Written+int64(len(p)) > ff.ShortWriteAt {
		keep := ff.ShortWriteAt - ff.Written
		if keep < 0 {
			keep = 0
		}
		n, err := ff.F.Write(p[:keep])
		ff.Written += int64(n)
		return n, err // short write, nil error: the violation under test
	}
	n, err := ff.F.Write(p)
	ff.Written += int64(n)
	return n, err
}

func (ff *FaultFile) Sync() error {
	if ff.FailNextSyncs > 0 {
		ff.FailNextSyncs--
		return ErrInjected
	}
	if ff.FailSync {
		return ErrInjected
	}
	if err := ff.F.Sync(); err != nil {
		return err
	}
	ff.Syncs++
	return nil
}

func (ff *FaultFile) Truncate(size int64) error { return ff.F.Truncate(size) }

// ReadAt passes reads through to the wrapped file (faults target the
// write path). It exists so a FaultFile satisfies wal.File, whose
// rotation needs to read back the post-snapshot tail.
func (ff *FaultFile) ReadAt(p []byte, off int64) (int, error) {
	ra, ok := ff.F.(io.ReaderAt)
	if !ok {
		return 0, errors.New("fsx: wrapped file does not support ReadAt")
	}
	return ra.ReadAt(p, off)
}

func (ff *FaultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.F.Seek(offset, whence)
}

func (ff *FaultFile) Close() error {
	err := ff.F.Close()
	if ff.FailClose {
		return ErrInjected
	}
	return err
}

// FailAfter wraps w so writes fail with ErrInjected once n bytes have
// passed through, partially applying the crossing write — the shape of
// a process dying mid-write. Use it to abort an AtomicWrite payload at
// an exact offset.
func FailAfter(w io.Writer, n int64) io.Writer {
	return &failWriter{w: w, budget: n}
}

type failWriter struct {
	w      io.Writer
	budget int64
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) > f.budget {
		n, err := f.w.Write(p[:f.budget])
		f.budget -= int64(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjected
	}
	n, err := f.w.Write(p)
	f.budget -= int64(n)
	return n, err
}
