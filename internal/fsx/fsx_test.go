package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	n, err := AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first version")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("first version")) {
		t.Errorf("reported %d bytes, want %d", n, len("first version"))
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first version" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second version")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second version" {
		t.Errorf("replace left %q", got)
	}
}

// TestAtomicWriteFailureKeepsOldFile is the rename-atomicity proof: a
// payload that dies mid-write (the in-process stand-in for a crash)
// must leave the previous file byte-identical and no temp debris.
func TestAtomicWriteFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	const old = "precious old state"
	if _, err := AtomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, old)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	payload := strings.Repeat("NEW", 100)
	for cut := int64(0); cut <= int64(len(payload)); cut += 37 {
		_, err := AtomicWrite(path, func(w io.Writer) error {
			_, err := io.WriteString(FailAfter(w, cut), payload)
			return err
		})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("cut at %d: error = %v, want injected fault", cut, err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != old {
			t.Fatalf("cut at %d: old file damaged: %q, %v", cut, got, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Errorf("temp debris left behind: %v", names)
	}
}

func TestAtomicWriteErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	boom := errors.New("payload boom")
	if _, err := AtomicWrite(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want payload's", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed first write left a file behind")
	}
}

func TestAtomicWriteMissingDir(t *testing.T) {
	if _, err := AtomicWrite(filepath.Join(t.TempDir(), "no", "such", "dir", "f"),
		func(io.Writer) error { return nil }); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}

func TestFaultFileWriteBudget(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFile(f)
	ff.FailWriteAfter = 10
	n, err := ff.Write([]byte("0123456789abcdef"))
	if n != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v, want 10, injected", n, err)
	}
	if n, err := ff.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	if ff.Written != 10 {
		t.Errorf("Written = %d, want 10", ff.Written)
	}
	ff.Close()
}

func TestFaultFileShortWrite(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ff := NewFaultFile(f)
	ff.ShortWriteAt = 4
	n, err := ff.Write([]byte("0123456789"))
	if n != 4 || err != nil {
		t.Fatalf("short write: n=%d err=%v, want 4, nil", n, err)
	}
}

func TestFaultFileSyncAndClose(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFile(f)
	if err := ff.Sync(); err != nil || ff.Syncs != 1 {
		t.Fatalf("healthy sync: %v (syncs %d)", err, ff.Syncs)
	}
	ff.FailSync = true
	if err := ff.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("fail-on-sync: %v", err)
	}
	ff.FailClose = true
	if err := ff.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("fail-on-close: %v", err)
	}
}
