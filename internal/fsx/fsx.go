// Package fsx holds the filesystem discipline the durability layer is
// built on: crash-safe atomic file replacement (temp file → flush →
// fsync → rename → parent-directory fsync) and fault-injection wrappers
// that let tests kill a write mid-record or fail an fsync on cue.
//
// Every on-disk artifact the database replaces wholesale — snapshots,
// VDBF clips — goes through AtomicWrite, so a crash at any instant
// leaves either the complete old file or the complete new file, never a
// torn mix. Append-only files (the write-ahead journal) have their own
// torn-tail recovery in package wal and do not use AtomicWrite.
package fsx

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// AtomicWrite replaces the file at path with whatever write produces,
// atomically with respect to crashes: the bytes go to a temp file in
// the same directory, are flushed and fsynced, and only then renamed
// over path, with a parent-directory fsync making the rename itself
// durable. If write (or any later step) fails, path is untouched and
// the temp file is removed. It returns the number of bytes the payload
// wrote.
func AtomicWrite(path string, write func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	// The temp file is removed on every failure path; open is tracked so
	// the deferred cleanup never double-closes after the success path.
	open := true
	defer func() {
		if open {
			tmp.Close()
		}
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()

	// CreateTemp makes 0600 files; widen to the 0644 a plain os.Create
	// would typically produce so replaced files keep readable perms.
	if err := tmp.Chmod(0o644); err != nil {
		return 0, err
	}

	bw := bufio.NewWriter(tmp)
	cw := &countingWriter{w: bw}
	if err := write(cw); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Sync before rename: otherwise the rename can become durable before
	// the data, and a power loss yields a complete-looking file of
	// garbage at the final path.
	if err := tmp.Sync(); err != nil {
		return cw.n, err
	}
	if err := tmp.Close(); err != nil {
		open = false
		return cw.n, err
	}
	open = false
	if err := os.Rename(tmpName, path); err != nil {
		return cw.n, err
	}
	tmpName = "" // renamed away; nothing to remove
	return cw.n, SyncDir(dir)
}

// SyncDir fsyncs a directory, making a rename (or create/remove) inside
// it durable. Filesystems that refuse to fsync directories report
// EINVAL or an unsupported-operation errno; those are swallowed — the
// caller did all it could. (os.ErrInvalid would not match here:
// syscall.Errno.Is only maps the permission/exist/not-exist/unsupported
// errnos, so the EINVAL check must name the errno itself.)
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// countingWriter counts the payload bytes through AtomicWrite.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
