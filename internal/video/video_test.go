package video

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPixelMaxChannelDiff(t *testing.T) {
	cases := []struct {
		p, q Pixel
		want int
	}{
		{Pixel{0, 0, 0}, Pixel{0, 0, 0}, 0},
		{Pixel{255, 0, 0}, Pixel{0, 0, 0}, 255},
		{Pixel{10, 20, 30}, Pixel{15, 18, 30}, 5},
		{Pixel{10, 20, 30}, Pixel{10, 20, 90}, 60},
		{Pixel{200, 100, 50}, Pixel{100, 250, 49}, 150},
	}
	for _, c := range cases {
		if got := c.p.MaxChannelDiff(c.q); got != c.want {
			t.Errorf("MaxChannelDiff(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestPixelMaxChannelDiffSymmetric(t *testing.T) {
	f := func(r1, g1, b1, r2, g2, b2 uint8) bool {
		p, q := Pixel{r1, g1, b1}, Pixel{r2, g2, b2}
		d := p.MaxChannelDiff(q)
		return d == q.MaxChannelDiff(p) && d >= 0 && d <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPixelLuma(t *testing.T) {
	if got := (Pixel{255, 255, 255}).Luma(); got != 255 {
		t.Errorf("white luma = %d, want 255", got)
	}
	if got := (Pixel{0, 0, 0}).Luma(); got != 0 {
		t.Errorf("black luma = %d, want 0", got)
	}
	// Green contributes most.
	g := (Pixel{0, 255, 0}).Luma()
	r := (Pixel{255, 0, 0}).Luma()
	b := (Pixel{0, 0, 255}).Luma()
	if !(g > r && r > b) {
		t.Errorf("luma ordering wrong: g=%d r=%d b=%d", g, r, b)
	}
}

func TestFrameAtClamps(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(0, 0, Pixel{1, 2, 3})
	f.Set(3, 2, Pixel{9, 8, 7})
	if got := f.At(-5, -5); got != (Pixel{1, 2, 3}) {
		t.Errorf("At(-5,-5) = %v, want clamp to (0,0)", got)
	}
	if got := f.At(100, 100); got != (Pixel{9, 8, 7}) {
		t.Errorf("At(100,100) = %v, want clamp to (3,2)", got)
	}
}

func TestFrameSetIgnoresOutOfRange(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(-1, 0, Pixel{255, 0, 0})
	f.Set(0, 5, Pixel{255, 0, 0})
	for i, p := range f.Pix {
		if p != (Pixel{}) {
			t.Fatalf("pixel %d modified by out-of-range Set: %v", i, p)
		}
	}
}

func TestNewFramePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFrame(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewFrame(dims[0], dims[1])
		}()
	}
}

func TestFrameCloneIndependent(t *testing.T) {
	f := NewFrame(3, 3)
	f.Fill(Pixel{10, 20, 30})
	g := f.Clone()
	g.Set(1, 1, Pixel{99, 99, 99})
	if f.At(1, 1) != (Pixel{10, 20, 30}) {
		t.Error("mutating clone changed original")
	}
	if !f.Equal(f.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestFrameEqual(t *testing.T) {
	a := NewFrame(2, 2)
	b := NewFrame(2, 2)
	if !a.Equal(b) {
		t.Error("identical zero frames not equal")
	}
	b.Set(0, 0, Pixel{1, 0, 0})
	if a.Equal(b) {
		t.Error("different frames reported equal")
	}
	c := NewFrame(2, 3)
	if a.Equal(c) {
		t.Error("different dimensions reported equal")
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a := NewFrame(2, 2)
	b := NewFrame(2, 2)
	if d := a.MeanAbsDiff(b); d != 0 {
		t.Errorf("identical frames diff = %v", d)
	}
	b.Fill(Pixel{30, 0, 0})
	if d := a.MeanAbsDiff(b); d != 10 {
		t.Errorf("diff = %v, want 10 (30 on one of three channels)", d)
	}
}

func TestSubImage(t *testing.T) {
	f := NewFrame(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			f.Set(x, y, Pixel{uint8(x), uint8(y), 0})
		}
	}
	s := f.SubImage(2, 3, 5, 7)
	if s.W != 3 || s.H != 4 {
		t.Fatalf("sub-image dims %dx%d, want 3x4", s.W, s.H)
	}
	if got := s.At(0, 0); got != (Pixel{2, 3, 0}) {
		t.Errorf("sub-image origin = %v, want (2,3,0)", got)
	}
	if got := s.At(2, 3); got != (Pixel{4, 6, 0}) {
		t.Errorf("sub-image corner = %v, want (4,6,0)", got)
	}
}

func TestImageRoundTrip(t *testing.T) {
	f := NewFrame(5, 4)
	for i := range f.Pix {
		f.Pix[i] = Pixel{uint8(i * 7), uint8(i * 13), uint8(i * 29)}
	}
	g := FromImage(f.ToImage())
	if !f.Equal(g) {
		t.Error("image round trip altered pixels")
	}
}

func TestClipResample30To3(t *testing.T) {
	c := NewClip("test", 30)
	for i := 0; i < 300; i++ { // 10 seconds
		c.Append(NewFrame(4, 4))
	}
	r := c.Resample(3)
	if r.FPS != 3 {
		t.Errorf("fps = %d, want 3", r.FPS)
	}
	if r.Len() != 30 {
		t.Errorf("resampled length = %d, want 30 (10s at 3fps)", r.Len())
	}
	if got, want := r.Duration(), c.Duration(); got != want {
		t.Errorf("duration changed: %v != %v", got, want)
	}
}

func TestClipResampleIdentity(t *testing.T) {
	c := NewClip("x", 3)
	c.Append(NewFrame(2, 2), NewFrame(2, 2))
	r := c.Resample(30)
	if r.Len() != 2 || r.FPS != 3 {
		t.Errorf("upsampling should be a copy: len=%d fps=%d", r.Len(), r.FPS)
	}
}

func TestClipResampleFramesAreShared(t *testing.T) {
	c := NewClip("x", 30)
	for i := 0; i < 30; i++ {
		c.Append(NewFrame(2, 2))
	}
	r := c.Resample(3)
	if r.Frames[0] != c.Frames[0] {
		t.Error("resample should share frame storage")
	}
}

func TestDurationString(t *testing.T) {
	c := NewClip("x", 30)
	for i := 0; i < 30*624; i++ { // 10:24
		c.Frames = append(c.Frames, nil)
	}
	if got := c.DurationString(); got != "10:24" {
		t.Errorf("DurationString = %q, want 10:24", got)
	}
}

func TestValidate(t *testing.T) {
	c := NewClip("v", 30)
	if err := c.Validate(); err == nil {
		t.Error("empty clip validated")
	}
	c.Append(NewFrame(4, 4), NewFrame(4, 4))
	if err := c.Validate(); err != nil {
		t.Errorf("valid clip rejected: %v", err)
	}
	c.Append(NewFrame(5, 4))
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "5x4") {
		t.Errorf("dimension mismatch not reported: %v", err)
	}
	c.Frames = c.Frames[:2]
	c.FPS = 0
	if err := c.Validate(); err == nil {
		t.Error("zero fps validated")
	}
	c.FPS = 30
	c.Frames[1] = nil
	if err := c.Validate(); err == nil {
		t.Error("nil frame validated")
	}
}

func TestResamplePanicsOnBadFPS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resample(0) did not panic")
		}
	}()
	NewClip("x", 30).Resample(0)
}
