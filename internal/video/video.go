// Package video defines the in-memory representation of video data used
// throughout the repository: RGB frames, clips (frame sequences with a
// frame rate), and the pixel arithmetic the indexing algorithms need.
//
// The paper's experiments digitize video at 160×120 pixels, 30 frames/s,
// and sample down to 3 frames/s before analysis (SIGMOD 2000, §5.1); the
// Resample helper reproduces that step.
package video

import (
	"fmt"
	"image"
	"image/color"
)

// Pixel is one RGB sample. The paper's RGB space ranges each channel over
// 0..255.
type Pixel struct {
	R, G, B uint8
}

// RGB constructs a Pixel from its three channel values.
func RGB(r, g, b uint8) Pixel {
	return Pixel{R: r, G: g, B: b}
}

// MaxChannelDiff returns the largest absolute per-channel difference
// between p and q. It is the distance the RELATIONSHIP algorithm (Eq. 2)
// and the signature matching stages use.
func (p Pixel) MaxChannelDiff(q Pixel) int {
	d := absDiff(p.R, q.R)
	if g := absDiff(p.G, q.G); g > d {
		d = g
	}
	if b := absDiff(p.B, q.B); b > d {
		d = b
	}
	return d
}

func absDiff(a, b uint8) int {
	if a > b {
		return int(a) - int(b)
	}
	return int(b) - int(a)
}

// Luma returns the integer luminance of p (ITU-R BT.601 weights scaled to
// integers), used by the edge-based SBD baseline.
func (p Pixel) Luma() int {
	return (299*int(p.R) + 587*int(p.G) + 114*int(p.B)) / 1000
}

// String implements fmt.Stringer.
func (p Pixel) String() string {
	return fmt.Sprintf("(%d,%d,%d)", p.R, p.G, p.B)
}

// Frame is a single video frame: a W×H grid of RGB pixels stored
// row-major.
type Frame struct {
	W, H int
	Pix  []Pixel
}

// NewFrame allocates a zeroed (black) frame of the given dimensions.
// It panics if either dimension is not positive.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("video: invalid frame dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]Pixel, w*h)}
}

// At returns the pixel at column x, row y. Out-of-range coordinates are
// clamped to the frame border, which simplifies windowed sampling in the
// region and synthesis code.
func (f *Frame) At(x, y int) Pixel {
	if x < 0 {
		x = 0
	} else if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Set writes the pixel at column x, row y. Out-of-range coordinates are
// ignored.
func (f *Frame) Set(x, y int, p Pixel) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = p
}

// Fill sets every pixel of the frame to p.
func (f *Frame) Fill(p Pixel) {
	for i := range f.Pix {
		f.Pix[i] = p
	}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// Equal reports whether two frames have identical dimensions and pixels.
func (f *Frame) Equal(g *Frame) bool {
	if f.W != g.W || f.H != g.H {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			return false
		}
	}
	return true
}

// MeanAbsDiff returns the mean absolute per-channel difference between
// two frames of identical dimensions. It panics on a dimension mismatch.
func (f *Frame) MeanAbsDiff(g *Frame) float64 {
	if f.W != g.W || f.H != g.H {
		panic("video: MeanAbsDiff dimension mismatch")
	}
	var sum int64
	for i := range f.Pix {
		sum += int64(absDiff(f.Pix[i].R, g.Pix[i].R))
		sum += int64(absDiff(f.Pix[i].G, g.Pix[i].G))
		sum += int64(absDiff(f.Pix[i].B, g.Pix[i].B))
	}
	return float64(sum) / float64(3*len(f.Pix))
}

// SubImage copies the rectangle [x0,x1)×[y0,y1) into a new frame,
// clamping source coordinates to the frame border.
func (f *Frame) SubImage(x0, y0, x1, y1 int) *Frame {
	if x1 <= x0 || y1 <= y0 {
		panic(fmt.Sprintf("video: invalid sub-image rectangle (%d,%d)-(%d,%d)", x0, y0, x1, y1))
	}
	sub := NewFrame(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			sub.Set(x-x0, y-y0, f.At(x, y))
		}
	}
	return sub
}

// ToImage converts the frame to a standard library image for export.
func (f *Frame) ToImage() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			p := f.Pix[y*f.W+x]
			img.Set(x, y, color.RGBA{p.R, p.G, p.B, 255})
		}
	}
	return img
}

// FromImage converts a standard library image to a Frame.
func FromImage(img image.Image) *Frame {
	b := img.Bounds()
	f := NewFrame(b.Dx(), b.Dy())
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			f.Pix[y*f.W+x] = Pixel{uint8(r >> 8), uint8(g >> 8), uint8(bl >> 8)}
		}
	}
	return f
}

// Clip is a sequence of frames with a nominal frame rate.
type Clip struct {
	// Name identifies the clip in catalogs, experiment tables and logs.
	Name string
	// FPS is the nominal frame rate in frames per second.
	FPS int
	// Frames holds the decoded frames in presentation order.
	Frames []*Frame
}

// NewClip returns an empty clip with the given name and frame rate.
func NewClip(name string, fps int) *Clip {
	return &Clip{Name: name, FPS: fps}
}

// Append adds frames to the end of the clip.
func (c *Clip) Append(frames ...*Frame) {
	c.Frames = append(c.Frames, frames...)
}

// Len returns the number of frames in the clip.
func (c *Clip) Len() int { return len(c.Frames) }

// Duration returns the clip length in seconds. A clip with FPS <= 0
// reports 0.
func (c *Clip) Duration() float64 {
	if c.FPS <= 0 {
		return 0
	}
	return float64(len(c.Frames)) / float64(c.FPS)
}

// DurationString formats the duration as the paper's tables do (min:sec).
func (c *Clip) DurationString() string {
	secs := int(c.Duration() + 0.5)
	return fmt.Sprintf("%d:%02d", secs/60, secs%60)
}

// Resample returns a new clip containing every frame whose timestamp
// lands on the targetFPS grid, reproducing the paper's 30→3 frames/s
// extraction. Resampling to the same or a higher rate returns a shallow
// copy. It panics if targetFPS is not positive.
func (c *Clip) Resample(targetFPS int) *Clip {
	if targetFPS <= 0 {
		panic("video: Resample with non-positive fps")
	}
	out := NewClip(c.Name, targetFPS)
	if targetFPS >= c.FPS {
		out.FPS = c.FPS
		out.Frames = append(out.Frames, c.Frames...)
		return out
	}
	step := float64(c.FPS) / float64(targetFPS)
	for pos := 0.0; int(pos) < len(c.Frames); pos += step {
		out.Frames = append(out.Frames, c.Frames[int(pos)])
	}
	return out
}

// Validate checks structural invariants: a positive frame rate, at least
// one frame, and uniform frame dimensions. It returns a descriptive error
// for the first violation found.
func (c *Clip) Validate() error {
	if c.FPS <= 0 {
		return fmt.Errorf("video: clip %q has non-positive fps %d", c.Name, c.FPS)
	}
	if len(c.Frames) == 0 {
		return fmt.Errorf("video: clip %q has no frames", c.Name)
	}
	w, h := c.Frames[0].W, c.Frames[0].H
	for i, f := range c.Frames {
		if f == nil {
			return fmt.Errorf("video: clip %q frame %d is nil", c.Name, i)
		}
		if f.W != w || f.H != h {
			return fmt.Errorf("video: clip %q frame %d is %dx%d, want %dx%d", c.Name, i, f.W, f.H, w, h)
		}
		if len(f.Pix) != f.W*f.H {
			return fmt.Errorf("video: clip %q frame %d has %d pixels, want %d", c.Name, i, len(f.Pix), f.W*f.H)
		}
	}
	return nil
}
