package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildJournal writes K deterministic records and returns the file
// bytes plus each record's decoded form, in order.
func buildJournal(t testing.TB, k int) ([]byte, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.wal")
	appendN(t, path, k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != k {
		t.Fatalf("reference journal bad: %d recs, damaged=%v", len(recs), res.Damaged)
	}
	return raw, recs
}

// recoverBytes writes raw to a scratch file and runs Recover, returning
// the replayed records and the file's post-recovery size.
func recoverBytes(t testing.TB, dir string, raw []byte) ([]Record, ReplayResult, int64) {
	t.Helper()
	path := filepath.Join(dir, "x.wal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	res, err := Recover(path, func(r Record) error {
		recs = append(recs, Record{Op: r.Op, Data: append([]byte(nil), r.Data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("recover must never fail on corruption: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs, res, st.Size()
}

// assertPrefix checks the torture invariant: whatever recovery
// returned is exactly a prefix of the original mutation sequence.
func assertPrefix(t *testing.T, label string, got, want []Record) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: recovered %d records from a journal of %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Op != want[i].Op || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("%s: record %d corrupt after recovery", label, i)
		}
	}
}

// TestTortureTruncateEveryOffset cuts a K-mutation journal at every
// byte offset: recovery must never panic, never surface a corrupt
// record, always return the longest valid prefix, and leave the file
// truncated to exactly that prefix so appends can resume.
func TestTortureTruncateEveryOffset(t *testing.T) {
	const k = 6
	raw, want := buildJournal(t, k)
	dir := t.TempDir()
	// Record boundaries: offsets at which a cut loses nothing.
	boundaries := map[int64]int{headerSize: 0}
	off := int64(headerSize)
	for i, r := range want {
		off += frameHeaderSize + 2 + int64(len(r.Data))
		boundaries[off] = i + 1
	}
	if off != int64(len(raw)) {
		t.Fatalf("frame arithmetic wrong: %d vs %d", off, len(raw))
	}

	for cut := 0; cut <= len(raw); cut++ {
		got, res, size := recoverBytes(t, dir, raw[:cut])
		assertPrefix(t, "truncate", got, want)
		if size != res.ValidBytes {
			t.Fatalf("cut %d: file %d bytes after recovery, valid prefix %d", cut, size, res.ValidBytes)
		}
		// A cut exactly on a record boundary loses nothing before it; any
		// other cut loses only the record it lands in.
		switch n, ok := boundaries[int64(cut)]; {
		case cut == 0: // no file content at all: a clean empty journal
			if len(got) != 0 || res.Damaged {
				t.Fatalf("cut 0: %d records, damaged=%v", len(got), res.Damaged)
			}
		case ok:
			if len(got) != n || res.Damaged {
				t.Fatalf("cut %d on boundary: %d records (want %d), damaged=%v", cut, len(got), n, res.Damaged)
			}
		case !res.Damaged:
			t.Fatalf("cut %d mid-record not reported damaged", cut)
		}
	}
}

// TestTortureCorruptEveryByte flips each byte of the journal in turn:
// recovery must still return a valid prefix — the CRC catches the
// damage, and no record after the flip survives unvalidated.
func TestTortureCorruptEveryByte(t *testing.T) {
	const k = 5
	raw, want := buildJournal(t, k)
	dir := t.TempDir()
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xff
		got, res, size := recoverBytes(t, dir, bad)
		assertPrefix(t, "corrupt", got, want)
		if size != res.ValidBytes {
			t.Fatalf("flip %d: file %d bytes after recovery, valid prefix %d", i, size, res.ValidBytes)
		}
		if len(got) == k && i >= headerSize {
			// A flip inside some record's frame must cost at least that
			// record (CRC32C has no single-bit-flip collisions).
			t.Fatalf("flip %d: all %d records survived a corrupted byte", i, k)
		}
	}
}

// TestTortureGarbageTail proves appending garbage after valid records
// costs only the garbage.
func TestTortureGarbageTail(t *testing.T) {
	const k = 4
	raw, want := buildJournal(t, k)
	dir := t.TempDir()
	for _, tail := range [][]byte{
		{0x00}, {0xff, 0xff}, bytes.Repeat([]byte{0xab}, 100),
	} {
		got, res, _ := recoverBytes(t, dir, append(append([]byte(nil), raw...), tail...))
		assertPrefix(t, "garbage tail", got, want)
		if len(got) != k || !res.Damaged {
			t.Fatalf("garbage tail: %d records (want %d), damaged=%v", len(got), k, res.Damaged)
		}
	}
}
