package wal

import (
	"fmt"
	"os"
	"time"

	"videodb/internal/core"
)

// ClipJournal adapts a Writer to core.Journal: ingests append the gob
// clip snapshot, deletes append the clip name. It is the piece
// vdbserver and vdbctl hand to core.Database.SetJournal.
type ClipJournal struct {
	w *Writer
}

// NewClipJournal wraps an open journal writer.
func NewClipJournal(w *Writer) *ClipJournal { return &ClipJournal{w: w} }

// LogIngest appends one ingested clip's analysis state.
func (j *ClipJournal) LogIngest(rec *core.ClipRecord) error {
	data, err := core.EncodeClipRecord(rec)
	if err != nil {
		return err
	}
	return j.w.Append(OpIngest, data)
}

// LogDelete appends one removal.
func (j *ClipJournal) LogDelete(name string) error {
	return j.w.Append(OpDelete, []byte(name))
}

// CutPoint reports the journal's current end offset, implementing
// core.SnapshotCutter: core.Database.BeginSnapshot reads it under the
// same lock hold that captures the snapshot state, making it a valid
// RotateTo cut.
func (j *ClipJournal) CutPoint() int64 { return j.w.Size() }

// Rotate empties the journal after a successful snapshot. Correct only
// when no mutation can have been journaled since the snapshot state
// was captured (single-threaded CLIs); a live server must RotateTo the
// captured cut point instead.
func (j *ClipJournal) Rotate() error { return j.w.Rotate() }

// RotateTo discards the journal prefix at or below cut — the records a
// snapshot begun at that cut captured — and keeps everything after it.
func (j *ClipJournal) RotateTo(cut int64) error { return j.w.RotateTo(cut) }

// Sync forces the journal to stable storage.
func (j *ClipJournal) Sync() error { return j.w.Sync() }

// Gen is the journal's current generation token (see Writer.Gen): the
// scope within which cut points are comparable.
func (j *ClipJournal) Gen() string { return j.w.Gen() }

// StreamFrom reads up to max bytes of whole records starting at cut —
// the primary side of WAL shipping (see Writer.TailFrom).
func (j *ClipJournal) StreamFrom(cut int64, max int) (data []byte, size int64, gen string, err error) {
	return j.w.TailFrom(cut, max)
}

// Close syncs and closes the journal.
func (j *ClipJournal) Close() error { return j.w.Close() }

// Stats returns the underlying writer's counters.
func (j *ClipJournal) Stats() Stats { return j.w.Stats() }

// ApplyRecord replays one decoded record into db through the
// idempotent replay entry points (ApplyIngestRecord/ApplyDelete),
// bypassing db's own journal. Recovery and the replica catch-up loop
// both go through here, so a streamed record and a locally recovered
// one are applied identically.
func ApplyRecord(db *core.Database, r Record) error { return apply(db, r) }

// apply replays one record into db. A record that decodes to garbage
// is indistinguishable from disk corruption the CRC happened to miss,
// so the caller treats its error as a truncation point, not a fatal
// condition.
func apply(db *core.Database, r Record) error {
	switch r.Op {
	case OpIngest:
		_, err := db.ApplyIngestRecord(r.Data)
		return err
	case OpDelete:
		db.ApplyDelete(string(r.Data))
		return nil
	default:
		return fmt.Errorf("wal: unknown op %d", r.Op)
	}
}

// RecoverDatabase replays the journal at path into db, truncating the
// file at the first torn or corrupt record — including records whose
// frame verifies but whose payload does not decode to valid clip
// state. It never fails on corruption, only on real I/O errors; the
// result says how much was recovered and how much was cut.
func RecoverDatabase(db *core.Database, path string) (ReplayResult, error) {
	var applyErr error
	res, err := Recover(path, func(r Record) error {
		if aerr := apply(db, r); aerr != nil {
			applyErr = aerr
			return aerr
		}
		return nil
	})
	if applyErr != nil {
		// The frame was intact but the payload was not a valid mutation:
		// same recovery stance as a checksum failure — keep the prefix,
		// cut the rest. Replay aborted before truncating, so cut here.
		res.Damaged = true
		res.Reason = fmt.Sprintf("record %d undecodable: %v", res.Records, applyErr)
		if terr := truncateTo(path, res.ValidBytes); terr != nil {
			return res, terr
		}
		return res, nil
	}
	return res, err
}

// truncateTo cuts the journal file to size and syncs the cut.
func truncateTo(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// RecoverAndOpen is the startup sequence of every durable process:
// replay the journal into db (truncating any torn tail), then reopen
// it for appending under the given sync policy, ready for SetJournal.
func RecoverAndOpen(db *core.Database, path string, policy Policy, interval time.Duration) (*ClipJournal, ReplayResult, error) {
	res, err := RecoverDatabase(db, path)
	if err != nil {
		return nil, res, err
	}
	w, err := OpenWriter(path, policy, interval)
	if err != nil {
		return nil, res, err
	}
	return NewClipJournal(w), res, nil
}
