// Package wal is the write-ahead journal of the video database: an
// append-only file of length-prefixed, CRC32C-checksummed, versioned
// mutation records that makes every acknowledged Ingest and Delete
// survive a crash between snapshots.
//
// File layout (all integers little-endian):
//
//	magic   "VDBW"             4 bytes
//	version uint16             currently 1
//	records ...                until EOF
//
// Each record:
//
//	length  uint32             len(payload), ≤ MaxRecord
//	crc     uint32             CRC32C (Castagnoli) of payload
//	payload [version u8][op u8][data ...]
//
// The reader (Replay) verifies each frame and stops at the first torn
// or corrupt record, reporting the longest valid prefix; Recover
// additionally truncates the file back to that prefix so the journal
// can be appended to again. A journal is therefore never "unreadable":
// any crash — mid-record, mid-length-word, even mid-header — loses at
// most the un-synced tail, never the records before it.
//
// The Writer offers three sync policies: PolicyAlways fsyncs after
// every append (no acknowledged mutation is ever lost), PolicyInterval
// fsyncs from a background ticker (bounded loss window), PolicyNone
// leaves flushing to the OS (process-crash safe, power-loss unsafe).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"videodb/internal/fsx"
)

// Magic identifies a journal file.
const Magic = "VDBW"

// Version is the current journal file-format version.
const Version = 1

// recordVersion is the per-record payload version byte.
const recordVersion = 1

// MaxRecord bounds one record's payload; a length word above it is
// corruption (and caps what a reader will allocate for a frame).
const MaxRecord = 256 << 20

// headerSize is the file header length: magic + uint16 version.
const headerSize = 6

// frameHeaderSize is the per-record frame header: length + CRC words.
const frameHeaderSize = 8

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64, and the conventional choice for storage
// checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Mutation op codes carried in each record's payload.
const (
	// OpIngest records one ingested clip; the data is the gob clip
	// snapshot core.EncodeClipRecord produces.
	OpIngest byte = 1
	// OpDelete records a removal; the data is the clip name.
	OpDelete byte = 2
)

// Policy selects when appends reach stable storage.
type Policy int

const (
	// PolicyAlways fsyncs after every append, inside the mutation's
	// critical section: an acknowledged write is on disk.
	PolicyAlways Policy = iota
	// PolicyInterval fsyncs from a background ticker; a crash loses at
	// most one interval of acknowledged writes.
	PolicyInterval
	// PolicyNone never fsyncs explicitly; the OS flushes when it
	// pleases. Survives a process crash, not a power loss.
	PolicyNone
)

// ParsePolicy maps the CLI spellings (always|interval|none) to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "none":
		return PolicyNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyNone:
		return "none"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// File is the slice of *os.File the writer needs; tests slide an
// fsx.FaultFile underneath to kill writes mid-record or fail fsyncs.
// ReadAt is what RotateTo uses to carry records appended after a
// snapshot's cut point into the fresh journal.
type File interface {
	io.Writer
	io.Seeker
	io.ReaderAt
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Stats is a point-in-time snapshot of a Writer's lifetime counters
// (the /api/metrics source).
type Stats struct {
	// Records is the number of records appended by this writer.
	Records int64
	// Bytes is the journal's current size, header included.
	Bytes int64
	// Fsyncs is the number of successful fsyncs.
	Fsyncs int64
	// FsyncSeconds is the total wall-clock time spent in fsync.
	FsyncSeconds float64
	// Rotations is the number of successful Rotate calls.
	Rotations int64
}

// Writer appends records to a journal. It is safe for concurrent use;
// in practice core.Database serializes appends under its write lock so
// journal order always equals commit order.
type Writer struct {
	mu      sync.Mutex
	f       File
	path    string // backing file path; "" for NewWriter-wrapped test files
	size    int64
	boot    int64 // generation base: unique per writer open, see Gen
	dirty   bool
	err     error // sticky: after a failed append the tail is suspect
	stats   Stats
	policy  Policy
	stopc   chan struct{}
	stopped sync.WaitGroup
}

// OpenWriter opens (creating if needed) the journal at path for
// appending. A zero-length file gets a fresh header; an existing file
// must carry a valid header — run Recover first to repair a torn one.
// With PolicyInterval, interval bounds the background fsync cadence
// (≤0 means one second).
func OpenWriter(path string, policy Policy, interval time.Duration) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > 0 && st.Size() < headerSize {
		// A crash torn the header itself; nothing after it can be valid.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
	} else if st.Size() >= headerSize {
		hdr := make([]byte, headerSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			return nil, err
		}
		if string(hdr[:4]) != Magic {
			f.Close()
			return nil, fmt.Errorf("wal: %s is not a journal (magic %q)", path, hdr[:4])
		}
		if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
			f.Close()
			return nil, fmt.Errorf("wal: %s: unsupported journal version %d", path, v)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	st, _ = f.Stat()
	return newWriter(f, path, st.Size(), policy, interval)
}

// NewWriter wraps an already-positioned File (tests use a FaultFile
// over a temp file). size is the file's current length; a zero size
// writes a fresh header.
func NewWriter(f File, size int64, policy Policy, interval time.Duration) (*Writer, error) {
	return newWriter(f, "", size, policy, interval)
}

func newWriter(f File, path string, size int64, policy Policy, interval time.Duration) (*Writer, error) {
	w := &Writer{f: f, path: path, size: size, policy: policy, boot: time.Now().UnixNano()}
	if size == 0 {
		hdr := make([]byte, 0, headerSize)
		hdr = append(hdr, Magic...)
		hdr = binary.LittleEndian.AppendUint16(hdr, Version)
		if err := w.writeLocked(hdr); err != nil {
			f.Close()
			return nil, err
		}
		if err := w.syncLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if policy == PolicyInterval {
		if interval <= 0 {
			interval = time.Second
		}
		w.stopc = make(chan struct{})
		w.stopped.Add(1)
		go w.flushLoop(interval)
	}
	return w, nil
}

// Append writes one record and applies the sync policy. On any write
// or fsync error the failed record is rolled back — the file is
// truncated to its pre-append size and the truncation synced — so a
// mutation rejected to the client can never reach a later replay
// through bytes the page cache flushed anyway. The writer then goes
// sticky-failed: the device is suspect, so further appends are refused
// with the same error until the journal is recovered and reopened.
func (w *Writer) Append(op byte, data []byte) error {
	if len(data) > MaxRecord-2 {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(data))
	}
	payload := make([]byte, 0, 2+len(data))
	payload = append(payload, recordVersion, op)
	payload = append(payload, data...)
	frame := make([]byte, 0, frameHeaderSize+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	start := w.size
	if err := w.writeLocked(frame); err != nil {
		w.rollbackLocked(start)
		return err
	}
	if w.policy == PolicyAlways {
		if err := w.syncLocked(); err != nil {
			w.rollbackLocked(start)
			return err
		}
	}
	w.stats.Records++
	return nil
}

func (w *Writer) writeLocked(b []byte) error {
	n, err := w.f.Write(b)
	w.size += int64(n)
	if err == nil && n != len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = fmt.Errorf("wal: append failed, journal tail suspect: %w", err)
		return w.err
	}
	w.dirty = true
	return nil
}

// rollbackLocked tries to erase a failed append so the rejected record
// cannot resurface in a future replay: truncate back to the pre-append
// size, re-seek, and push the truncation to disk. Best effort — if any
// step fails the tail stays suspect and the sticky error (already set
// by the caller's failure) keeps refusing appends until Recover
// repairs the file; Recover's CRC check then discards the torn record.
func (w *Writer) rollbackLocked(to int64) {
	if err := w.f.Truncate(to); err != nil {
		return
	}
	if _, err := w.f.Seek(to, io.SeekStart); err != nil {
		return
	}
	w.size = to
	if err := w.f.Sync(); err != nil {
		return
	}
	w.dirty = false
}

func (w *Writer) syncLocked() error {
	if !w.dirty {
		return nil
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync failed, journal tail suspect: %w", err)
		return w.err
	}
	w.stats.FsyncSeconds += time.Since(t0).Seconds()
	w.stats.Fsyncs++
	w.dirty = false
	return nil
}

// Sync forces the journal to stable storage regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

// Size returns the journal's current length in bytes, header included.
// Read it at the same instant a snapshot's state is captured (under the
// database lock that serializes appends) and it is a cut point for
// RotateTo: every record at or below it is in that snapshot, every
// record above it is not.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// ErrBadCut reports a TailFrom offset that is not a valid cut point of
// the current journal generation — below the file header or beyond the
// journal's end. A streaming replica receiving it must re-bootstrap
// from a fresh snapshot; match it with errors.Is.
var ErrBadCut = errors.New("wal: offset is not a cut point of this journal generation")

// Gen identifies the journal's current generation: it changes on every
// rotation and on every writer (re)open, and two equal Gen values name
// the same byte layout. A cut point is only meaningful within one
// generation — rotation rewrites the file as header+tail, shifting
// every offset — so the WAL-shipping protocol pairs each cut with the
// Gen it was read under and rejects streams whose generation moved.
func (w *Writer) Gen() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.genLocked()
}

func (w *Writer) genLocked() string {
	return fmt.Sprintf("%x-%d", w.boot, w.stats.Rotations)
}

// TailFrom reads up to max bytes of the journal starting at offset
// from, returning the chunk, the journal's current size and generation.
// from must lie on a record boundary of the current generation — any
// Size()/CutPoint() value observed since the last rotation qualifies,
// as does headerSize for "every record". A caught-up reader (from ==
// size) gets an empty chunk. Serving reads under the writer lock means
// a chunk never ends mid-append, so every returned byte range is a
// whole number of records.
//
// This is the primary side of WAL shipping: a replica polls TailFrom
// (over GET /api/replication/wal) and replays the chunks through
// ReplayRecords. Note the durability caveat: TailFrom serves appended
// bytes regardless of whether they have been fsynced, so under
// PolicyInterval/PolicyNone a replica can briefly hold records a
// primary power-loss then forgets (see docs/CLUSTER.md).
func (w *Writer) TailFrom(from int64, max int) (data []byte, size int64, gen string, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, 0, "", w.err
	}
	gen = w.genLocked()
	if from < headerSize || from > w.size {
		return nil, w.size, gen, fmt.Errorf("%w: from=%d size=%d", ErrBadCut, from, w.size)
	}
	n := w.size - from
	if n > int64(max) {
		n = int64(max)
	}
	if n == 0 {
		return nil, w.size, gen, nil
	}
	data = make([]byte, n)
	if _, err := w.f.ReadAt(data, from); err != nil {
		return nil, w.size, gen, fmt.Errorf("wal: reading tail at %d: %w", from, err)
	}
	return data, w.size, gen, nil
}

// Rotate empties the journal completely. It is only correct when the
// caller can guarantee no mutation was journaled since the snapshot
// that prompted the rotation was captured — a single-threaded CLI, for
// example. A concurrent server must use RotateTo with a cut point
// captured atomically with the snapshot state, or an append landing
// between capture and rotation is erased from the journal while absent
// from the snapshot: a silently lost acknowledged write.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateToLocked(w.size)
}

// RotateTo discards exactly the journal prefix a snapshot captured —
// cut is the Size() observed at snapshot-capture time — while keeping
// every record appended after it. With no tail the file shrinks back
// to a bare header; with a tail the journal is rewritten as header +
// tail through an atomic replace (temp file, fsync, rename, directory
// fsync), so a crash at any instant leaves either the old complete
// journal (replay re-applies records the snapshot already holds —
// idempotent) or the new one, never a torn mix.
func (w *Writer) RotateTo(cut int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateToLocked(cut)
}

func (w *Writer) rotateToLocked(cut int64) error {
	if w.err != nil {
		return w.err
	}
	if cut > w.size {
		return fmt.Errorf("wal: rotate cut %d beyond journal size %d", cut, w.size)
	}
	if cut < headerSize {
		// A cut inside (or before) the header can only mean "nothing was
		// captured"; keep every record.
		cut = headerSize
	}
	var tail []byte
	if n := w.size - cut; n > 0 {
		tail = make([]byte, n)
		if _, err := w.f.ReadAt(tail, cut); err != nil {
			// Nothing was modified; the journal is intact and rotation
			// simply did not happen.
			return fmt.Errorf("wal: rotate: reading post-snapshot tail: %w", err)
		}
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, Version)

	if len(tail) > 0 && w.path != "" {
		// Atomic replace, then point the writer at the new inode. Any
		// failure past the rename would leave the fd diverging from the
		// path a recovery will read, so every error here is sticky.
		if _, err := fsx.AtomicWrite(w.path, func(out io.Writer) error {
			if _, err := out.Write(hdr); err != nil {
				return err
			}
			_, err := out.Write(tail)
			return err
		}); err != nil {
			w.err = fmt.Errorf("wal: rotate failed: %w", err)
			return w.err
		}
		nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
		if err != nil {
			w.err = fmt.Errorf("wal: reopening rotated journal: %w", err)
			return w.err
		}
		if _, err := nf.Seek(0, io.SeekEnd); err != nil {
			nf.Close()
			w.err = fmt.Errorf("wal: reopening rotated journal: %w", err)
			return w.err
		}
		w.f.Close() // old inode, already renamed away
		w.f = nf
		w.size = int64(headerSize + len(tail))
		w.dirty = false
		w.stats.Rotations++
		return nil
	}

	// No tail to preserve (or a pathless test writer, which cannot do
	// the rename dance): rewrite in place. With an empty tail this is
	// crash-safe — the snapshot holds everything, so a torn header only
	// costs an already-captured journal.
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("wal: rotate failed: %w", err)
		return w.err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.err = fmt.Errorf("wal: rotate failed: %w", err)
		return w.err
	}
	w.size = 0
	if err := w.writeLocked(hdr); err != nil {
		return err
	}
	if len(tail) > 0 {
		if err := w.writeLocked(tail); err != nil {
			return err
		}
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	w.stats.Rotations++
	return nil
}

// Stats returns the writer's lifetime counters and current size.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Bytes = w.size
	return st
}

// Err reports the sticky failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the background flusher, syncs once more and closes the
// file.
func (w *Writer) Close() error {
	if w.stopc != nil {
		close(w.stopc)
		w.stopped.Wait()
		w.stopc = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	if w.err == nil {
		firstErr = w.syncLocked()
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (w *Writer) flushLoop(interval time.Duration) {
	defer w.stopped.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil && w.dirty {
				// Best effort: the sticky error also fails the next
				// Append, which is where the caller can act on it.
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Record is one decoded journal record.
type Record struct {
	// Op is the mutation op code (OpIngest, OpDelete).
	Op byte
	// Data is the op payload (gob clip snapshot, or clip name bytes).
	// It aliases a buffer Replay reuses between records: it is valid
	// only until the apply callback returns — copy it to retain it.
	Data []byte
}

// ReplayResult describes what a Replay (or Recover) found.
type ReplayResult struct {
	// Records is the number of valid records replayed.
	Records int
	// ValidBytes is the length of the longest valid prefix, header
	// included.
	ValidBytes int64
	// TotalBytes is the input length actually seen.
	TotalBytes int64
	// Damaged reports that the input ended in a torn or corrupt record
	// (TotalBytes > ValidBytes).
	Damaged bool
	// Reason says what stopped the replay when Damaged.
	Reason string
}

// TruncatedBytes is the tail length a damaged journal loses.
func (r ReplayResult) TruncatedBytes() int64 { return r.TotalBytes - r.ValidBytes }

// Replay streams records from r, calling apply for each valid record in
// order. It stops — without error — at the first torn or corrupt
// frame, reporting the longest valid prefix; arbitrary garbage input
// yields a result, never a panic. An apply error aborts the replay and
// is returned (the journal itself may be fine; the state is not).
// The Record passed to apply shares Replay's reused payload buffer:
// its Data is overwritten by the next record, so apply must finish
// with (or copy) the bytes before returning.
func Replay(r io.Reader, apply func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	damaged := func(reason string) (ReplayResult, error) {
		res.Damaged = true
		res.Reason = reason
		return res, nil
	}

	hdr := make([]byte, headerSize)
	n, err := io.ReadFull(r, hdr)
	res.TotalBytes = int64(n)
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return res, nil // empty journal: nothing recorded yet
	}
	if err == io.ErrUnexpectedEOF {
		return damaged("torn file header")
	}
	if err != nil {
		return res, fmt.Errorf("wal: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return damaged(fmt.Sprintf("bad magic %q", hdr[:4]))
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return damaged(fmt.Sprintf("unsupported journal version %d", v))
	}
	res.ValidBytes = headerSize
	return replayRecords(r, apply, res)
}

// ReplayRecords is Replay for a headerless stream of records — the
// byte ranges Writer.TailFrom serves, which start at a record boundary
// past the file header. The same damage taxonomy applies: a torn or
// corrupt frame stops the replay without error, and ValidBytes reports
// the longest valid prefix of the stream (relative to its start, since
// there is no header). The replication path uses it to apply shipped
// WAL chunks; a Damaged result there means a torn stream, and the
// replica must restart from its last acknowledged cut.
func ReplayRecords(r io.Reader, apply func(Record) error) (ReplayResult, error) {
	return replayRecords(r, apply, ReplayResult{})
}

// replayRecords consumes frames from r until EOF, damage, or an apply
// error, extending res.
func replayRecords(r io.Reader, apply func(Record) error, res ReplayResult) (ReplayResult, error) {
	damaged := func(reason string) (ReplayResult, error) {
		res.Damaged = true
		res.Reason = reason
		return res, nil
	}

	frame := make([]byte, frameHeaderSize)
	var payload []byte
	for {
		n, err := io.ReadFull(r, frame)
		res.TotalBytes += int64(n)
		if err == io.EOF {
			return res, nil // clean end on a record boundary
		}
		if err == io.ErrUnexpectedEOF {
			return damaged("torn record header")
		}
		if err != nil {
			return res, fmt.Errorf("wal: reading record header: %w", err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		wantCRC := binary.LittleEndian.Uint32(frame[4:8])
		if length < 2 || length > MaxRecord {
			return damaged(fmt.Sprintf("implausible record length %d", length))
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		n, err = io.ReadFull(r, payload)
		res.TotalBytes += int64(n)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return damaged("torn record payload")
		}
		if err != nil {
			return res, fmt.Errorf("wal: reading record payload: %w", err)
		}
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return damaged(fmt.Sprintf("record %d checksum mismatch (file %08x, computed %08x)", res.Records, wantCRC, got))
		}
		if payload[0] != recordVersion {
			return damaged(fmt.Sprintf("record %d has unsupported version %d", res.Records, payload[0]))
		}
		rec := Record{Op: payload[1], Data: payload[2:]}
		if apply != nil {
			if err := apply(rec); err != nil {
				return res, fmt.Errorf("wal: applying record %d: %w", res.Records, err)
			}
		}
		res.Records++
		res.ValidBytes = res.TotalBytes
	}
}

// Recover replays the journal at path into apply and, if the file ends
// in a torn or corrupt record, truncates it back to the longest valid
// prefix so a Writer can append again. A missing file is an empty
// journal. Recovery never fails on corruption — only on I/O errors or
// an apply error.
func Recover(path string, apply func(Record) error) (ReplayResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return ReplayResult{}, nil
	}
	if err != nil {
		return ReplayResult{}, err
	}
	defer f.Close()
	res, err := Replay(f, apply)
	if err != nil {
		return res, err
	}
	if res.Damaged {
		if err := f.Truncate(res.ValidBytes); err != nil {
			return res, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return res, fmt.Errorf("wal: syncing truncation: %w", err)
		}
	}
	return res, nil
}
