package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"videodb/internal/fsx"
)

// journalPath makes a scratch journal path.
func journalPath(t testing.TB) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "db.wal")
}

// appendN writes n records with deterministic payloads and closes.
func appendN(t testing.TB, path string, n int) {
	t.Helper()
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		op := OpIngest
		if i%3 == 2 {
			op = OpDelete
		}
		if err := w.Append(op, testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// testPayload is record i's deterministic body, varying in size so
// frames land at irregular offsets.
func testPayload(i int) []byte {
	return bytes.Repeat([]byte{byte('a' + i%26)}, 5+i*7%40)
}

// collect replays the file at path into a slice.
func collect(t testing.TB, path string) ([]Record, ReplayResult) {
	t.Helper()
	var recs []Record
	res, err := Recover(path, func(r Record) error {
		recs = append(recs, Record{Op: r.Op, Data: append([]byte(nil), r.Data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := journalPath(t)
	appendN(t, path, 7)
	recs, res := collect(t, path)
	if res.Damaged {
		t.Fatalf("clean journal reported damaged: %+v", res)
	}
	if len(recs) != 7 || res.Records != 7 {
		t.Fatalf("replayed %d records, want 7", len(recs))
	}
	for i, r := range recs {
		wantOp := OpIngest
		if i%3 == 2 {
			wantOp = OpDelete
		}
		if r.Op != wantOp || !bytes.Equal(r.Data, testPayload(i)) {
			t.Errorf("record %d mismatch: op=%d len=%d", i, r.Op, len(r.Data))
		}
	}
}

func TestReplayEmptyAndMissing(t *testing.T) {
	recs, res := collect(t, journalPath(t)) // missing file
	if len(recs) != 0 || res.Records != 0 || res.Damaged {
		t.Errorf("missing journal: %+v", res)
	}
	res2, err := Replay(bytes.NewReader(nil), nil)
	if err != nil || res2.Damaged || res2.Records != 0 {
		t.Errorf("empty journal: %+v, %v", res2, err)
	}
}

func TestOpenWriterRejectsForeignFile(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWriter(path, PolicyNone, 0); err == nil {
		t.Fatal("foreign file opened as journal")
	}
}

func TestReopenAppendsAfterExistingRecords(t *testing.T) {
	path := journalPath(t)
	appendN(t, path, 3)
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpDelete, []byte("later")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != 4 {
		t.Fatalf("after reopen: %d records, damaged=%v", len(recs), res.Damaged)
	}
	if string(recs[3].Data) != "later" {
		t.Errorf("appended record lost: %q", recs[3].Data)
	}
}

func TestRotateEmptiesJournal(t *testing.T) {
	path := journalPath(t)
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(OpIngest, testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Bytes != headerSize || st.Rotations != 1 {
		t.Errorf("after rotate: bytes=%d rotations=%d", st.Bytes, st.Rotations)
	}
	if st.Records != 4 {
		t.Errorf("lifetime record counter reset by rotate: %d", st.Records)
	}
	// Post-rotation appends land in the fresh journal.
	if err := w.Append(OpDelete, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != 1 || string(recs[0].Data) != "fresh" {
		t.Fatalf("post-rotation journal wrong: %d recs, damaged=%v", len(recs), res.Damaged)
	}
}

// RotateTo discards only the prefix below the cut: records appended
// after a snapshot's cut point survive the rotation and replay, along
// with anything appended later.
func TestRotateToPreservesTail(t *testing.T) {
	path := journalPath(t)
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"a", "b"} {
		if err := w.Append(OpIngest, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	cut := w.Size()
	for _, d := range []string{"c", "d"} {
		if err := w.Append(OpIngest, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RotateTo(cut); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Rotations != 1 {
		t.Errorf("rotations = %d, want 1", st.Rotations)
	}
	// The writer keeps appending to the rotated journal.
	if err := w.Append(OpDelete, []byte("e")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != 3 {
		t.Fatalf("after RotateTo: %d records, damaged=%v (%s)", len(recs), res.Damaged, res.Reason)
	}
	for i, want := range []string{"c", "d", "e"} {
		if string(recs[i].Data) != want {
			t.Errorf("record %d = %q, want %q", i, recs[i].Data, want)
		}
	}
}

// RotateTo on a pathless writer takes the in-place fallback; the tail
// must still survive.
func TestRotateToPreservesTailPathless(t *testing.T) {
	path := journalPath(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fsx.NewFaultFile(f), 0, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpIngest, []byte("captured")); err != nil {
		t.Fatal(err)
	}
	cut := w.Size()
	if err := w.Append(OpIngest, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := w.RotateTo(cut); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != 1 || string(recs[0].Data) != "kept" {
		t.Fatalf("after pathless RotateTo: %d records, damaged=%v", len(recs), res.Damaged)
	}
}

// A cut beyond the journal's size is a caller bug, reported without
// touching the file.
func TestRotateToRejectsFutureCut(t *testing.T) {
	path := journalPath(t)
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(OpIngest, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.RotateTo(w.Size() + 1); err == nil {
		t.Fatal("cut beyond size accepted")
	}
	if w.Err() != nil {
		t.Fatalf("rejected cut went sticky: %v", w.Err())
	}
}

// A failed append is rolled back on disk: the rejected record's bytes
// are truncated away, so a mutation the client was told failed can
// never resurface in a replay. The writer still refuses further
// appends (the device is suspect).
func TestFailedAppendRolledBack(t *testing.T) {
	path := journalPath(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fault := fsx.NewFaultFile(f)
	w, err := NewWriter(fault, 0, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpIngest, []byte("good")); err != nil {
		t.Fatal(err)
	}
	before := w.Size()
	fault.FailWriteAfter = fault.Written + 10 // dies mid-next-record
	if err := w.Append(OpIngest, bytes.Repeat([]byte("x"), 64)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("mid-record failure: %v", err)
	}
	fault.FailWriteAfter = -1
	if err := w.Append(OpIngest, []byte("after")); err == nil {
		t.Fatal("append accepted after a torn write")
	}
	if st := w.Stats(); st.Records != 1 {
		t.Errorf("records stat = %d, want 1", st.Records)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != before {
		t.Fatalf("journal is %d bytes after rollback, want %d", fi.Size(), before)
	}
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != 1 || string(recs[0].Data) != "good" {
		t.Fatalf("after rollback: %d records, damaged=%v", len(recs), res.Damaged)
	}
}

// Same for a failed fsync under PolicyAlways: the record bytes reached
// the file, but the client was told the mutation failed, so the
// rollback truncation must remove them before any replay can see them.
func TestFailedFsyncRolledBack(t *testing.T) {
	path := journalPath(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fault := fsx.NewFaultFile(f)
	w, err := NewWriter(fault, 0, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpIngest, []byte("first")); err != nil {
		t.Fatal(err)
	}
	before := w.Size()
	fault.FailNextSyncs = 1
	if err := w.Append(OpIngest, []byte("phantom")); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("failed fsync surfaced as %v", err)
	}
	if w.Err() == nil {
		t.Error("failed fsync did not go sticky")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != before {
		t.Fatalf("journal is %d bytes after rollback, want %d", fi.Size(), before)
	}
	recs, res := collect(t, path)
	if res.Damaged || len(recs) != 1 || string(recs[0].Data) != "first" {
		t.Fatalf("after fsync rollback: %d records, damaged=%v", len(recs), res.Damaged)
	}
}

func TestStatsCountFsyncs(t *testing.T) {
	path := journalPath(t)
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := w.Stats().Fsyncs
	for i := 0; i < 3; i++ {
		if err := w.Append(OpIngest, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Fsyncs != base+3 {
		t.Errorf("fsyncs = %d, want %d (one per append under PolicyAlways)", st.Fsyncs, base+3)
	}
	if st.FsyncSeconds < 0 {
		t.Errorf("negative fsync seconds %g", st.FsyncSeconds)
	}
	w.Close()
}

func TestPolicyIntervalBackgroundFlush(t *testing.T) {
	path := journalPath(t)
	w, err := OpenWriter(path, PolicyInterval, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := w.Stats().Fsyncs
	if err := w.Append(OpIngest, []byte("interval")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Fsyncs == base {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": PolicyAlways, "interval": PolicyInterval, "none": PolicyNone} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("Policy.String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// fault opens a real temp file and wraps it in a FaultFile-backed
// writer.
func faultWriter(t testing.TB, ff func(*fsx.FaultFile)) (*Writer, *fsx.FaultFile) {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "w.wal"))
	if err != nil {
		t.Fatal(err)
	}
	fault := fsx.NewFaultFile(f)
	if ff != nil {
		ff(fault)
	}
	w, err := NewWriter(fault, 0, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	return w, fault
}

func TestAppendFailureGoesSticky(t *testing.T) {
	w, fault := faultWriter(t, nil)
	if err := w.Append(OpIngest, []byte("good")); err != nil {
		t.Fatal(err)
	}
	fault.FailWriteAfter = fault.Written + 10 // dies mid-next-record
	err := w.Append(OpIngest, bytes.Repeat([]byte("x"), 64))
	if !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("mid-record failure: %v", err)
	}
	// Every later append is refused with the sticky error: the tail is
	// torn and blindly appending after it would corrupt the journal.
	fault.FailWriteAfter = -1
	if err := w.Append(OpIngest, []byte("after")); err == nil {
		t.Fatal("append accepted after a torn write")
	}
	if w.Err() == nil {
		t.Error("sticky error not reported")
	}
}

func TestShortWriteBecomesError(t *testing.T) {
	w, fault := faultWriter(t, nil)
	fault.ShortWriteAt = headerSize + 5
	err := w.Append(OpIngest, bytes.Repeat([]byte("y"), 32))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write surfaced as %v, want ErrShortWrite", err)
	}
	if w.Err() == nil {
		t.Error("short write did not go sticky")
	}
}

func TestFsyncFailureGoesSticky(t *testing.T) {
	w, fault := faultWriter(t, nil)
	fault.FailSync = true
	err := w.Append(OpIngest, []byte("z"))
	if !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("failed fsync surfaced as %v", err)
	}
	if err := w.Append(OpIngest, []byte("z2")); err == nil {
		t.Fatal("append accepted after failed fsync")
	}
}

// TestTornTailRecoveredThenWritable is the full crash-reopen cycle: a
// writer dies mid-record, Recover truncates the torn tail, a fresh
// writer appends, and everything replays.
func TestTornTailRecoveredThenWritable(t *testing.T) {
	path := journalPath(t)
	appendN(t, path, 5)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through the last record.
	if err := os.WriteFile(path, clean[:len(clean)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, path)
	if !res.Damaged || len(recs) != 4 {
		t.Fatalf("torn tail: %d records, damaged=%v (%s)", len(recs), res.Damaged, res.Reason)
	}
	if res.TruncatedBytes() <= 0 {
		t.Errorf("truncated bytes = %d", res.TruncatedBytes())
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != res.ValidBytes {
		t.Errorf("file not truncated to valid prefix: %d vs %d", st.Size(), res.ValidBytes)
	}
	// The journal is append-ready again.
	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(OpDelete, []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, res = collect(t, path)
	if res.Damaged || len(recs) != 5 || string(recs[4].Data) != "post-crash" {
		t.Fatalf("post-recovery journal wrong: %d recs, damaged=%v", len(recs), res.Damaged)
	}
}

func TestApplyErrorAbortsReplay(t *testing.T) {
	path := journalPath(t)
	appendN(t, path, 3)
	boom := errors.New("apply boom")
	n := 0
	_, err := Recover(path, func(Record) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("apply error lost: %v", err)
	}
}

func TestReplayStopsAtImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{1, 0}) // version
	// A frame header claiming a multi-gigabyte record.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	res, err := Replay(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Damaged || res.Records != 0 || res.ValidBytes != headerSize {
		t.Errorf("oversize length: %+v", res)
	}
}

func ExampleReplay() {
	var buf bytes.Buffer
	f := nopFile{&buf}
	w, _ := NewWriter(f, 0, PolicyNone, 0)
	w.Append(OpIngest, []byte("clip-a"))
	w.Append(OpDelete, []byte("clip-a"))
	res, _ := Replay(bytes.NewReader(buf.Bytes()), func(r Record) error {
		fmt.Printf("op=%d data=%s\n", r.Op, r.Data)
		return nil
	})
	fmt.Printf("records=%d damaged=%v\n", res.Records, res.Damaged)
	// Output:
	// op=1 data=clip-a
	// op=2 data=clip-a
	// records=2 damaged=false
}

// nopFile adapts a bytes.Buffer to the File interface for the example.
type nopFile struct{ b *bytes.Buffer }

func (n nopFile) Write(p []byte) (int, error)    { return n.b.Write(p) }
func (n nopFile) Seek(int64, int) (int64, error) { return 0, nil }
func (n nopFile) Sync() error                    { return nil }
func (n nopFile) Truncate(int64) error           { return nil }
func (n nopFile) Close() error                   { return nil }
func (n nopFile) ReadAt(p []byte, off int64) (int, error) {
	b := n.b.Bytes()
	if off >= int64(len(b)) {
		return 0, io.EOF
	}
	return copy(p, b[off:]), nil
}
