package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"videodb/internal/core"
	"videodb/internal/vtest"
)

func openCoreDB(t testing.TB) *core.Database {
	t.Helper()
	db, err := core.Open(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func ingestTiny(t testing.TB, db *core.Database, name string, seed uint64) {
	t.Helper()
	if _, err := db.Ingest(vtest.TwoShotClip(name, seed, seed+1, 8, 16)); err != nil {
		t.Fatal(err)
	}
}

// journaledDB opens a database with a live clip journal at path.
func journaledDB(t testing.TB, path string, policy Policy) (*core.Database, *ClipJournal) {
	t.Helper()
	db := openCoreDB(t)
	j, res, err := RecoverAndOpen(db, path, policy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged {
		t.Fatalf("fresh journal reported damage: %+v", res)
	}
	db.SetJournal(j)
	t.Cleanup(func() { j.Close() })
	return db, j
}

// assertSameDB checks that two databases hold identical clip sets and
// answer shot queries identically — the differential check recovery
// tests lean on.
func assertSameDB(t *testing.T, got, want *core.Database) {
	t.Helper()
	gc, wc := got.Clips(), want.Clips()
	if len(gc) != len(wc) {
		t.Fatalf("recovered %d clips %v, want %d %v", len(gc), gc, len(wc), wc)
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("clip list differs: %v vs %v", gc, wc)
		}
	}
	if got.ShotCount() != want.ShotCount() {
		t.Fatalf("recovered %d index entries, want %d", got.ShotCount(), want.ShotCount())
	}
	for _, name := range wc {
		wrec, _ := want.Clip(name)
		grec, ok := got.Clip(name)
		if !ok {
			t.Fatalf("clip %q missing after recovery", name)
		}
		if len(grec.Shots) != len(wrec.Shots) || grec.Frames != wrec.Frames || grec.FPS != wrec.FPS {
			t.Fatalf("clip %q differs after recovery", name)
		}
		for shot := range wrec.Shots {
			wm, err := want.QueryByShot(name, shot, 8)
			if err != nil {
				t.Fatal(err)
			}
			gm, err := got.QueryByShot(name, shot, 8)
			if err != nil {
				t.Fatalf("query %s/%d after recovery: %v", name, shot, err)
			}
			if len(gm) != len(wm) {
				t.Fatalf("query %s/%d: %d matches, want %d", name, shot, len(gm), len(wm))
			}
			for k := range wm {
				if gm[k].Entry.Clip != wm[k].Entry.Clip || gm[k].Entry.Shot != wm[k].Entry.Shot {
					t.Fatalf("query %s/%d result %d differs: %+v vs %+v", name, shot, k, gm[k].Entry, wm[k].Entry)
				}
			}
		}
	}
}

// A journal alone — no snapshot — rebuilds the exact database state,
// including deletes.
func TestRecoverDatabaseDifferential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clips.wal")
	db, _ := journaledDB(t, path, PolicyAlways)
	for i := 0; i < 3; i++ {
		ingestTiny(t, db, fmt.Sprintf("clip-%d", i), uint64(10+i*2))
	}
	if err := db.Remove("clip-1"); err != nil {
		t.Fatal(err)
	}

	recovered := openCoreDB(t)
	res, err := RecoverDatabase(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged || res.Records != 4 {
		t.Fatalf("replay result %+v, want 4 clean records", res)
	}
	assertSameDB(t, recovered, db)
}

// Crash between "snapshot written" and "journal rotated": replaying
// the whole journal over the snapshot re-applies records the snapshot
// already holds. Idempotence must make that a no-op.
func TestSnapshotPlusFullJournalEqualsMemory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clips.wal")
	db, _ := journaledDB(t, path, PolicyAlways)
	ingestTiny(t, db, "early-0", 30)
	ingestTiny(t, db, "early-1", 40)

	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// No rotation — the crash hit here. One more mutation lands in the
	// journal only.
	ingestTiny(t, db, "late", 50)

	recovered, err := core.Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RecoverDatabase(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged || res.Records != 3 {
		t.Fatalf("replay result %+v, want 3 clean records", res)
	}
	assertSameDB(t, recovered, db)
}

// After rotation the journal is empty: snapshot + rotated journal must
// equal memory, and replaying twice must change nothing.
func TestReplayIdempotentAfterRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clips.wal")
	db, j := journaledDB(t, path, PolicyAlways)
	ingestTiny(t, db, "kept", 60)

	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if err := j.Rotate(); err != nil {
		t.Fatal(err)
	}
	ingestTiny(t, db, "fresh", 70)

	recovered, err := core.Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, err := RecoverDatabase(recovered, path)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Damaged || res.Records != 1 {
			t.Fatalf("round %d: replay result %+v, want 1 clean record", round, res)
		}
		assertSameDB(t, recovered, db)
	}
}

// The lost-write race: an ingest that commits and journals after the
// snapshot state is captured but before the journal rotates must
// survive the rotation — it is in neither the snapshot nor, with a
// naive full rotation, the journal. BeginSnapshot pins the journal cut
// with the state under one lock hold; RotateTo discards only the
// captured prefix.
func TestRotateToKeepsWritesAfterSnapshotCut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clips.wal")
	db, j := journaledDB(t, path, PolicyAlways)
	ingestTiny(t, db, "early", 300)

	snap := db.BeginSnapshot()
	cut, ok := snap.JournalCut()
	if !ok {
		t.Fatal("BeginSnapshot captured no journal cut")
	}
	// The race window: a mutation lands between capture and rotation.
	ingestTiny(t, db, "late", 310)

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := j.RotateTo(cut); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash here: recovery is snapshot + rotated journal. "late" must
	// still exist, replayed from the journal's preserved tail.
	recovered, err := core.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RecoverDatabase(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged || res.Records != 1 {
		t.Fatalf("replay result %+v, want exactly the post-cut record", res)
	}
	assertSameDB(t, recovered, db)
}

// A record whose frame checks out but whose payload is not a valid
// mutation must be treated as corruption: keep the prefix, truncate
// the rest, never fail startup.
func TestRecoverDatabaseTruncatesUndecodableRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clips.wal")
	db, j := journaledDB(t, path, PolicyAlways)
	ingestTiny(t, db, "good", 80)
	if err := j.w.Append(OpIngest, []byte("not a gob clip snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := openCoreDB(t)
	res, err := RecoverDatabase(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Damaged || res.Records != 1 {
		t.Fatalf("replay result %+v, want damage after 1 record", res)
	}
	if _, ok := recovered.Clip("good"); !ok {
		t.Fatal("valid prefix record lost")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != res.ValidBytes {
		t.Fatalf("journal is %d bytes after recovery, want %d", fi.Size(), res.ValidBytes)
	}
	// The cut tail must not resurface: a second recovery is clean and
	// identical, and the journal accepts appends again.
	again := openCoreDB(t)
	res2, err := RecoverDatabase(again, path)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Damaged || res2.Records != 1 {
		t.Fatalf("re-recovery result %+v, want 1 clean record", res2)
	}
	assertSameDB(t, again, recovered)

	w, err := OpenWriter(path, PolicyAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewClipJournal(w)
	again.SetJournal(j2)
	ingestTiny(t, again, "after-cut", 90)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

// Torture the clip journal the way the generic torture tests hit the
// frame layer: cut the file at every record boundary and at sampled
// intra-record offsets; recovery must always yield the longest valid
// prefix of ingested clips.
func TestClipJournalTortureTruncate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clips.wal")
	db, j := journaledDB(t, path, PolicyAlways)

	boundaries := []int64{headerSize}
	names := []string{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t-%d", i)
		ingestTiny(t, db, name, uint64(100+i*2))
		names = append(names, name)
		boundaries = append(boundaries, j.Stats().Bytes)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != boundaries[len(boundaries)-1] {
		t.Fatalf("journal is %d bytes, stats say %d", len(data), boundaries[len(boundaries)-1])
	}

	// recordsBelow: how many whole records fit under a cut at off.
	recordsBelow := func(off int64) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= off {
				n = i
			}
		}
		return n
	}

	cuts := append([]int64(nil), boundaries...)
	for i := 1; i < len(boundaries); i++ {
		prev, cur := boundaries[i-1], boundaries[i]
		cuts = append(cuts, prev+1, (prev+cur)/2, cur-1)
	}
	for _, cut := range cuts {
		tpath := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(tpath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recovered := openCoreDB(t)
		res, err := RecoverDatabase(recovered, tpath)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := recordsBelow(cut)
		if res.Records != want {
			t.Fatalf("cut %d: recovered %d records, want %d (%+v)", cut, res.Records, want, res)
		}
		for k, name := range names {
			_, ok := recovered.Clip(name)
			if wantClip := k < want; ok != wantClip {
				t.Fatalf("cut %d: clip %q present=%v, want %v", cut, name, ok, wantClip)
			}
		}
	}
}

// PolicyInterval journals stay consistent under concurrent ingest
// while the flusher runs (exercised under -race).
func TestClipJournalConcurrentInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clips.wal")
	db, j := journaledDB(t, path, PolicyInterval)
	_ = j
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			ingestTiny(t, db, fmt.Sprintf("iv-%d", i), uint64(200+i*2))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent ingest wedged")
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	recovered := openCoreDB(t)
	res, err := RecoverDatabase(recovered, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged || res.Records != 4 {
		t.Fatalf("replay result %+v, want 4 clean records", res)
	}
	assertSameDB(t, recovered, db)
}
