package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzJournalReplay: arbitrary bytes must never panic the journal
// reader, never yield a record that fails its checksum discipline, and
// the reported valid prefix must replay identically a second time —
// the invariant startup recovery depends on.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a well-formed two-record journal.
	var valid bytes.Buffer
	valid.WriteString(Magic)
	valid.Write([]byte{1, 0})
	for _, data := range [][]byte{[]byte("clip-a"), []byte("x")} {
		payload := append([]byte{recordVersion, OpIngest}, data...)
		var frame []byte
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
		frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
		valid.Write(append(frame, payload...))
	}
	f.Add(valid.Bytes())
	// Seed: flipped CRC byte.
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[headerSize+5] ^= 1
	f.Add(flipped)
	// Seed: truncated mid-payload, bare header, empty, garbage.
	f.Add(valid.Bytes()[:valid.Len()-2])
	f.Add([]byte(Magic + "\x01\x00"))
	f.Add([]byte{})
	f.Add([]byte("VDBWxxxxxxxxxxxxxxxxxxxxxxxx"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		res, err := Replay(bytes.NewReader(data), func(r Record) error {
			recs = append(recs, Record{Op: r.Op, Data: append([]byte(nil), r.Data...)})
			return nil
		})
		if err != nil {
			t.Fatalf("in-memory replay reported an I/O error: %v", err)
		}
		if res.ValidBytes > int64(len(data)) || res.TotalBytes > int64(len(data)) {
			t.Fatalf("result exceeds input: %+v for %d bytes", res, len(data))
		}
		if res.Records != len(recs) {
			t.Fatalf("applied %d records, result says %d", len(recs), res.Records)
		}
		if res.Damaged == (res.ValidBytes == res.TotalBytes) && len(data) > 0 {
			t.Fatalf("damage flag inconsistent: %+v", res)
		}
		// Idempotence: replaying the valid prefix alone must yield the
		// same records and no damage.
		again := 0
		res2, err := Replay(bytes.NewReader(data[:res.ValidBytes]), func(r Record) error {
			if again >= len(recs) || recs[again].Op != r.Op || !bytes.Equal(recs[again].Data, r.Data) {
				t.Fatalf("record %d differs on re-replay", again)
			}
			again++
			return nil
		})
		if err != nil || res2.Damaged || again != len(recs) {
			t.Fatalf("valid prefix does not re-replay cleanly: %+v, %v (records %d/%d)", res2, err, again, len(recs))
		}
	})
}
