package feature

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"videodb/internal/pyramid"
	"videodb/internal/video"
)

func solidFrame(w, h int, p video.Pixel) *video.Frame {
	f := video.NewFrame(w, h)
	f.Fill(p)
	return f
}

func TestAnalyzeSolidFrame(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	p := video.RGB(120, 80, 40)
	ff := a.Analyze(solidFrame(160, 120, p))
	if ff.SignBA != p {
		t.Errorf("SignBA = %v, want %v", ff.SignBA, p)
	}
	if ff.SignOA != p {
		t.Errorf("SignOA = %v, want %v", ff.SignOA, p)
	}
	if len(ff.Signature) != a.Geometry().L {
		t.Errorf("signature length %d, want %d", len(ff.Signature), a.Geometry().L)
	}
	for i, s := range ff.Signature {
		if s != p {
			t.Fatalf("signature[%d] = %v, want %v", i, s, p)
		}
	}
}

// TestSignsSeparateRegions: a frame whose background differs from its
// foreground must produce different BA and OA signs.
func TestSignsSeparateRegions(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	g := a.Geometry()
	f := video.NewFrame(160, 120)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			if g.InFBA(x, y) {
				f.Set(x, y, video.RGB(200, 200, 200))
			} else {
				f.Set(x, y, video.RGB(20, 20, 20))
			}
		}
	}
	ff := a.Analyze(f)
	if ff.SignBA.R < 190 {
		t.Errorf("SignBA = %v, want bright", ff.SignBA)
	}
	if ff.SignOA.R > 30 {
		t.Errorf("SignOA = %v, want dark", ff.SignOA)
	}
}

func TestAnalyzeClip(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	c := video.NewClip("t", 3)
	c.Append(solidFrame(160, 120, video.RGB(10, 10, 10)),
		solidFrame(160, 120, video.RGB(200, 200, 200)))
	feats := a.AnalyzeClip(c)
	if len(feats) != 2 {
		t.Fatalf("got %d features, want 2", len(feats))
	}
	if feats[0].SignBA == feats[1].SignBA {
		t.Error("distinct frames produced identical signs")
	}
}

func featWithBA(r, g, b uint8) FrameFeature {
	return FrameFeature{SignBA: video.RGB(r, g, b), SignOA: video.RGB(r, g, b)}
}

func TestShotFeatureConstantShot(t *testing.T) {
	feats := []FrameFeature{featWithBA(100, 100, 100), featWithBA(100, 100, 100), featWithBA(100, 100, 100)}
	sf := ShotFeatureFromFrames(feats, 0, 2)
	if sf.VarBA != 0 || sf.VarOA != 0 {
		t.Errorf("constant shot has VarBA=%v VarOA=%v, want 0", sf.VarBA, sf.VarOA)
	}
	if sf.Dv() != 0 {
		t.Errorf("Dv = %v, want 0", sf.Dv())
	}
	for i := 0; i < 3; i++ {
		if sf.MeanBA[i] != 100 {
			t.Errorf("MeanBA[%d] = %v, want 100", i, sf.MeanBA[i])
		}
	}
}

func TestShotFeatureKnownVariance(t *testing.T) {
	// Signs alternate between 90 and 110 on every channel over 4
	// frames: mean 100, sum of squared deviations per channel = 400,
	// sample variance = 400/3 per channel; averaged over channels the
	// same.
	feats := []FrameFeature{featWithBA(90, 90, 90), featWithBA(110, 110, 110), featWithBA(90, 90, 90), featWithBA(110, 110, 110)}
	sf := ShotFeatureFromFrames(feats, 0, 3)
	want := 400.0 / 3.0
	if math.Abs(sf.VarBA-want) > 1e-9 {
		t.Errorf("VarBA = %v, want %v", sf.VarBA, want)
	}
}

func TestShotFeatureSingleFrame(t *testing.T) {
	feats := []FrameFeature{featWithBA(50, 60, 70)}
	sf := ShotFeatureFromFrames(feats, 0, 0)
	if sf.VarBA != 0 {
		t.Errorf("single-frame shot variance = %v, want 0", sf.VarBA)
	}
	if sf.Frames() != 1 {
		t.Errorf("Frames() = %d, want 1", sf.Frames())
	}
}

func TestShotFeatureSubRange(t *testing.T) {
	feats := []FrameFeature{
		featWithBA(0, 0, 0),
		featWithBA(100, 100, 100),
		featWithBA(100, 100, 100),
		featWithBA(255, 255, 255),
	}
	sf := ShotFeatureFromFrames(feats, 1, 2)
	if sf.VarBA != 0 {
		t.Errorf("sub-range variance = %v, want 0", sf.VarBA)
	}
	if sf.Start != 1 || sf.End != 2 {
		t.Errorf("range = [%d,%d], want [1,2]", sf.Start, sf.End)
	}
}

func TestShotFeaturePanicsOnBadRange(t *testing.T) {
	feats := []FrameFeature{featWithBA(0, 0, 0)}
	for _, r := range [][2]int{{-1, 0}, {0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", r)
				}
			}()
			ShotFeatureFromFrames(feats, r[0], r[1])
		}()
	}
}

func TestDvOrdering(t *testing.T) {
	// High background change, low object change → positive Dv;
	// the reverse → negative Dv.
	a := ShotFeature{VarBA: 25, VarOA: 4}
	b := ShotFeature{VarBA: 4, VarOA: 25}
	if a.Dv() != 3 {
		t.Errorf("Dv = %v, want 3", a.Dv())
	}
	if b.Dv() != -3 {
		t.Errorf("Dv = %v, want -3", b.Dv())
	}
}

// TestLongestSignRunTable2 reproduces the paper's Table 2: a 20-frame
// shot with sign runs of lengths 6, 2, 4, 2, 6; the first 6-run wins the
// tie and frame 1 (index 0) is the representative.
func TestLongestSignRunTable2(t *testing.T) {
	mk := func(r, g, b uint8, n int) []FrameFeature {
		out := make([]FrameFeature, n)
		for i := range out {
			out[i] = featWithBA(r, g, b)
		}
		return out
	}
	var feats []FrameFeature
	feats = append(feats, mk(219, 152, 142, 6)...)
	feats = append(feats, mk(226, 164, 172, 2)...)
	feats = append(feats, mk(213, 149, 134, 4)...)
	feats = append(feats, mk(200, 137, 123, 2)...)
	feats = append(feats, mk(228, 160, 149, 6)...)
	if len(feats) != 20 {
		t.Fatalf("table has %d frames, want 20", len(feats))
	}
	frame, length := LongestSignRun(feats, 0, 19)
	if frame != 0 {
		t.Errorf("representative frame index = %d, want 0 (paper's frame No. 1)", frame)
	}
	if length != 6 {
		t.Errorf("run length = %d, want 6", length)
	}
}

func TestLongestSignRunSubRange(t *testing.T) {
	var feats []FrameFeature
	for i := 0; i < 5; i++ {
		feats = append(feats, featWithBA(uint8(i), 0, 0))
	}
	feats = append(feats, featWithBA(9, 9, 9), featWithBA(9, 9, 9), featWithBA(9, 9, 9))
	frame, length := LongestSignRun(feats, 2, 7)
	if frame != 5 || length != 3 {
		t.Errorf("run = (%d,%d), want (5,3)", frame, length)
	}
}

func BenchmarkAnalyze160x120(b *testing.B) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		b.Fatal(err)
	}
	f := solidFrame(160, 120, video.RGB(100, 100, 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Analyze(f)
	}
}

// TestAnalyzeMatchesUnpooledPath: the pooled fast path must produce
// byte-identical features to the allocation-per-call pyramid functions.
func TestAnalyzeMatchesUnpooledPath(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	g := a.Geometry()
	f := video.NewFrame(160, 120)
	for i := range f.Pix {
		f.Pix[i] = video.RGB(uint8(i*7), uint8(i*13), uint8(i*29))
	}
	got := a.Analyze(f)

	tba := g.TBA(f)
	wantSig, wantBA := pyramid.SignatureAndSign(tba)
	wantOA := pyramid.Sign(g.FOA(f))
	if got.SignBA != wantBA {
		t.Errorf("SignBA %v != %v", got.SignBA, wantBA)
	}
	if got.SignOA != wantOA {
		t.Errorf("SignOA %v != %v", got.SignOA, wantOA)
	}
	for i := range wantSig {
		if got.Signature[i] != wantSig[i] {
			t.Fatalf("signature[%d] %v != %v", i, got.Signature[i], wantSig[i])
		}
	}
}

// TestAnalyzeConcurrent exercises the scratch pool from many
// goroutines; run with -race to verify safety.
func TestAnalyzeConcurrent(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	f := video.NewFrame(160, 120)
	for i := range f.Pix {
		f.Pix[i] = video.RGB(uint8(i), uint8(i/2), uint8(i/3))
	}
	want := a.Analyze(f)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := a.Analyze(f)
				if got.SignBA != want.SignBA || got.SignOA != want.SignOA {
					t.Errorf("concurrent analyze diverged: %v vs %v", got.SignBA, want.SignBA)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAnalyzeClipStreamYieldsInOrder pins the ordered fan-in contract
// the sequential shot detector depends on: whatever the worker count,
// yield sees frame 0, 1, 2, ... exactly once each, with features
// identical to the serial path (signature vectors included).
func TestAnalyzeClipStreamYieldsInOrder(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	c := video.NewClip("stream", 3)
	for i := 0; i < 23; i++ {
		f := video.NewFrame(160, 120)
		for j := range f.Pix {
			f.Pix[j] = video.RGB(uint8(i*29+j), uint8(j/5), uint8(i*3))
		}
		c.Append(f)
	}
	serial := a.AnalyzeClip(c)
	for _, workers := range []int{1, 2, 7, 32} {
		next := 0
		err := a.AnalyzeClipStream(context.Background(), c, workers, func(i int, ff FrameFeature) {
			if i != next {
				t.Fatalf("workers=%d: yielded frame %d, want %d", workers, i, next)
			}
			next++
			if ff.SignBA != serial[i].SignBA || ff.SignOA != serial[i].SignOA {
				t.Fatalf("workers=%d frame %d: signs differ from serial", workers, i)
			}
			for j := range serial[i].Signature {
				if ff.Signature[j] != serial[i].Signature[j] {
					t.Fatalf("workers=%d frame %d: signature[%d] differs", workers, i, j)
				}
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if next != c.Len() {
			t.Fatalf("workers=%d: yielded %d frames, want %d", workers, next, c.Len())
		}
	}
}

// TestAnalyzeClipStreamCancel cancels mid-stream (from inside yield,
// the way the ingest pipeline's caller would) and verifies the stream
// stops with the context's error and winds its goroutines down.
func TestAnalyzeClipStreamCancel(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	c := video.NewClip("cancel", 3)
	for i := 0; i < 64; i++ {
		f := video.NewFrame(160, 120)
		c.Append(f)
	}
	before := runtime.NumGoroutine()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		err := a.AnalyzeClipStream(ctx, c, workers, func(i int, ff FrameFeature) {
			seen++
			if seen == 5 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if seen >= c.Len() {
			t.Fatalf("workers=%d: stream ran to completion despite cancel", workers)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled streams", before, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAnalyzeClipParallelMatchesSerial(t *testing.T) {
	a, err := NewAnalyzer(160, 120)
	if err != nil {
		t.Fatal(err)
	}
	c := video.NewClip("par", 3)
	for i := 0; i < 12; i++ {
		f := video.NewFrame(160, 120)
		for j := range f.Pix {
			f.Pix[j] = video.RGB(uint8(i*17+j), uint8(j/3), uint8(i))
		}
		c.Append(f)
	}
	serial := a.AnalyzeClip(c)
	for _, workers := range []int{0, 1, 3, 16} {
		par := a.AnalyzeClipParallel(c, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d features", workers, len(par))
		}
		for i := range serial {
			if par[i].SignBA != serial[i].SignBA || par[i].SignOA != serial[i].SignOA {
				t.Fatalf("workers=%d frame %d differs", workers, i)
			}
		}
	}
}
