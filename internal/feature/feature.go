// Package feature computes the paper's per-frame and per-shot feature
// values: the background sign Sign^BA, the object-area sign Sign^OA, the
// background signature (§2.1–2.2), and the per-shot statistical
// variances Var^BA and Var^OA (Eqs. 3–6) that form the two-value feature
// vector of the variance-based similarity model (§4.1).
package feature

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"videodb/internal/pyramid"
	"videodb/internal/region"
	"videodb/internal/video"
)

// FrameFeature holds the analysis result for one video frame.
type FrameFeature struct {
	// SignBA is the single-pixel reduction of the transformed
	// background area.
	SignBA video.Pixel
	// SignOA is the single-pixel reduction of the fixed object area.
	SignOA video.Pixel
	// Signature is the one-line reduction of the TBA (length g.L); it
	// feeds SBD stages 2 and 3.
	Signature []video.Pixel
}

// Analyzer extracts frame features for a fixed frame geometry. It is
// safe for concurrent use: per-goroutine scratch space is drawn from an
// internal pool.
type Analyzer struct {
	geom region.Geometry
	pool sync.Pool
}

// scratch is the reusable per-goroutine analysis workspace.
type scratch struct {
	tba, foa *video.Frame
	red      *pyramid.Reducer
}

// NewAnalyzer returns an analyzer for c×r frames with the default 10%
// border.
func NewAnalyzer(c, r int) (*Analyzer, error) {
	g, err := region.New(c, r)
	if err != nil {
		return nil, err
	}
	return NewAnalyzerWithGeometry(g), nil
}

// NewAnalyzerWithGeometry returns an analyzer using a precomputed
// geometry (for the border-fraction ablation).
func NewAnalyzerWithGeometry(g region.Geometry) *Analyzer {
	a := &Analyzer{geom: g}
	a.pool.New = func() any {
		maxW := g.L
		if g.B > maxW {
			maxW = g.B
		}
		maxH := g.W
		if g.H > maxH {
			maxH = g.H
		}
		return &scratch{
			tba: video.NewFrame(g.L, g.W),
			foa: video.NewFrame(g.B, g.H),
			red: pyramid.NewReducer(maxW, maxH),
		}
	}
	return a
}

// Geometry returns the region geometry the analyzer uses.
func (a *Analyzer) Geometry() region.Geometry { return a.geom }

// Analyze computes the frame's features — the pure per-frame reduce
// step of the ingest pipeline: FBA/FOA extraction, TBA transform, then
// the Gaussian-pyramid reduction to signature and signs. It depends on
// no other frame, so frames may be analyzed in any order or in
// parallel. It panics if f does not match the analyzer's frame size
// (the underlying region extraction checks). Only the returned
// Signature slice is freshly allocated; all working memory comes from
// the analyzer's pool.
func (a *Analyzer) Analyze(f *video.Frame) FrameFeature {
	s := a.pool.Get().(*scratch)
	defer a.pool.Put(s)

	a.geom.TBAInto(f, s.tba)
	sig := make([]video.Pixel, a.geom.L)
	signBA := s.red.Reduce(s.tba, sig)

	a.geom.FOAInto(f, s.foa)
	signOA := s.red.Sign(s.foa)

	return FrameFeature{SignBA: signBA, SignOA: signOA, Signature: sig}
}

// AnalyzeClip analyzes every frame of a clip, returning one FrameFeature
// per frame.
func (a *Analyzer) AnalyzeClip(c *video.Clip) []FrameFeature {
	out := make([]FrameFeature, len(c.Frames))
	for i, f := range c.Frames {
		out[i] = a.Analyze(f)
	}
	return out
}

// AnalyzeClipParallel is AnalyzeClip spread over the given number of
// workers (0 = GOMAXPROCS). Frames are independent, so the result is
// identical to AnalyzeClip; on multicore machines ingest becomes
// analysis-bound rather than core-bound.
func (a *Analyzer) AnalyzeClipParallel(c *video.Clip, workers int) []FrameFeature {
	out := make([]FrameFeature, len(c.Frames))
	// Background context: the stream can only fail on cancellation.
	_ = a.AnalyzeClipStream(context.Background(), c, workers,
		func(i int, ff FrameFeature) { out[i] = ff })
	return out
}

// frameResult carries one analyzed frame from a worker to the ordered
// consumer.
type frameResult struct {
	idx  int
	feat FrameFeature
}

// AnalyzeClipStream analyzes a clip's frames with a bounded worker pool
// (workers ≤ 1 analyzes inline; 0 = GOMAXPROCS) and delivers every
// frame's feature to yield strictly in frame order, from the caller's
// goroutine. This is the fan-out half of the two-phase ingest pipeline:
// the embarrassingly parallel per-frame reduction runs on the pool
// while the caller's yield — typically the sequential three-stage
// shot-boundary test, which compares consecutive frames — consumes an
// ordered stream, so results are identical to AnalyzeClip regardless
// of worker count.
//
// A reorder window bounded by the worker count keeps memory flat when
// one frame analyzes slowly. Cancelling ctx stops the pool promptly and
// returns ctx.Err(); no goroutines outlive the call.
func (a *Analyzer) AnalyzeClipStream(ctx context.Context, c *video.Clip, workers int, yield func(i int, ff FrameFeature)) error {
	n := len(c.Frames)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, f := range c.Frames {
			if err := ctx.Err(); err != nil {
				return err
			}
			yield(i, a.Analyze(f))
		}
		return nil
	}

	// Indices are issued to the pool in ascending order, so the at most
	// workers+window outstanding frames are always the smallest
	// unconsumed indices — the ordered consumer can always make
	// progress and the reorder buffer stays bounded.
	window := 2 * workers
	jobs := make(chan int)
	results := make(chan frameResult, window)
	done := ctx.Done()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := frameResult{idx: i, feat: a.Analyze(c.Frames[i])}
				select {
				case results <- r:
				case <-done:
					return
				}
			}
		}()
	}
	go func() { // dispatcher
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()
	go func() { // closer: lets the consumer detect early worker exit
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]FrameFeature, window)
	next := 0
	for next < n {
		select {
		case r, ok := <-results:
			if !ok {
				// Workers quit before frame n−1: only cancellation
				// does that.
				return ctx.Err()
			}
			pending[r.idx] = r.feat
			for {
				ff, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				yield(next, ff)
				next++
			}
		case <-done:
			return ctx.Err()
		}
	}
	return nil
}

// ShotFeature is the per-shot feature vector of §4.1: the variances of
// the background and object signs across the shot's frames, plus the
// derived similarity coordinate Dv = sqrt(VarBA) − sqrt(VarOA) (§4.2).
type ShotFeature struct {
	// Start and End are the first and last frame indices of the shot
	// (inclusive), 0-based within the analyzed clip.
	Start, End int
	// VarBA and VarOA are the statistical variances of Sign^BA and
	// Sign^OA over the shot (Eqs. 3 and 5), averaged over the three
	// colour channels.
	VarBA, VarOA float64
	// MeanBA and MeanOA are the per-channel mean signs (Eqs. 4 and 6).
	MeanBA, MeanOA [3]float64
}

// Dv returns sqrt(VarBA) − sqrt(VarOA), the primary index coordinate of
// the similarity model (§4.2).
func (s ShotFeature) Dv() float64 {
	return math.Sqrt(s.VarBA) - math.Sqrt(s.VarOA)
}

// Frames returns the number of frames in the shot.
func (s ShotFeature) Frames() int { return s.End - s.Start + 1 }

// String formats the feature as an index-table row (Table 4 layout).
func (s ShotFeature) String() string {
	return fmt.Sprintf("frames %d-%d VarBA=%.2f VarOA=%.2f Dv=%.2f", s.Start, s.End, s.VarBA, s.VarOA, s.Dv())
}

// channelsOf splits a pixel into float channels.
func channelsOf(p video.Pixel) [3]float64 {
	return [3]float64{float64(p.R), float64(p.G), float64(p.B)}
}

// meanAndVariance computes the per-channel mean and the channel-averaged
// sample variance of the given signs, following Eqs. 3–4: the mean
// divides by the frame count (l−k+1) while the variance divides by l−k.
// A single-sign sequence has variance 0 by definition (DESIGN.md).
func meanAndVariance(signs []video.Pixel) (mean [3]float64, variance float64) {
	n := len(signs)
	if n == 0 {
		return mean, 0
	}
	for _, s := range signs {
		c := channelsOf(s)
		for i := 0; i < 3; i++ {
			mean[i] += c[i]
		}
	}
	for i := 0; i < 3; i++ {
		mean[i] /= float64(n)
	}
	if n == 1 {
		return mean, 0
	}
	var sum float64
	for _, s := range signs {
		c := channelsOf(s)
		for i := 0; i < 3; i++ {
			d := c[i] - mean[i]
			sum += d * d
		}
	}
	// Per-channel sample variance (divide by l−k = n−1), averaged over
	// the three channels.
	return mean, sum / float64(n-1) / 3
}

// ShotFeatureFromFrames computes the ShotFeature for the frame range
// [start, end] (inclusive) over precomputed frame features. It panics if
// the range is empty or out of bounds.
func ShotFeatureFromFrames(feats []FrameFeature, start, end int) ShotFeature {
	if start < 0 || end >= len(feats) || start > end {
		panic(fmt.Sprintf("feature: invalid shot range [%d,%d] over %d frames", start, end, len(feats)))
	}
	ba := make([]video.Pixel, 0, end-start+1)
	oa := make([]video.Pixel, 0, end-start+1)
	for i := start; i <= end; i++ {
		ba = append(ba, feats[i].SignBA)
		oa = append(oa, feats[i].SignOA)
	}
	sf := ShotFeature{Start: start, End: end}
	sf.MeanBA, sf.VarBA = meanAndVariance(ba)
	sf.MeanOA, sf.VarOA = meanAndVariance(oa)
	return sf
}

// LongestSignRun returns the 0-based frame index (relative to the start
// of feats slice indices given) beginning the longest run of consecutive
// frames whose Sign^BA values are identical, along with the run length.
// Ties go to the earliest run, matching the representative-frame rule of
// §3.1 step 6 and Table 2. It panics on an empty range.
func LongestSignRun(feats []FrameFeature, start, end int) (frame, length int) {
	if start < 0 || end >= len(feats) || start > end {
		panic(fmt.Sprintf("feature: invalid range [%d,%d] over %d frames", start, end, len(feats)))
	}
	bestStart, bestLen := start, 1
	runStart, runLen := start, 1
	for i := start + 1; i <= end; i++ {
		if feats[i].SignBA == feats[i-1].SignBA {
			runLen++
		} else {
			runStart, runLen = i, 1
		}
		if runLen > bestLen {
			bestStart, bestLen = runStart, runLen
		}
	}
	return bestStart, bestLen
}
